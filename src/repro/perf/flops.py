"""Per-layer FLOP/byte/kernel accounting for ``repro.nn`` models.

The throughput figures of the paper (Figure 6) were measured on an RTX
A6000; this reproduction replaces the GPU with an analytic roofline model
(:mod:`repro.perf.roofline`) fed by the exact per-layer arithmetic counted
here.

Counting strategy: one real forward pass (batch 1, no-grad) runs with a
tracer hooked into ``Module.__call__``; every *leaf* layer records its input
and output shapes, from which FLOPs, memory traffic and Tensor-Core
eligibility follow analytically.  All quantities scale linearly with batch
size, so one trace serves every batch point.

Tensor-Core eligibility implements the diagnosis of Figure 6D: cuDNN maps a
convolution onto Tensor Cores only when the channel dimensions provide
enough matrix width — BCAE-HT's (2, 4, 4, 8)-feature encoder never
qualifies, which is why half precision buys it almost nothing.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn.modules import Module

__all__ = ["LayerStats", "ModelTrace", "trace_model", "TC_MIN_CHANNELS"]

#: Minimum in/out channel count for a convolution to engage Tensor Cores
#: (cuDNN requires ≥8-wide matrix fragments in fp16).
TC_MIN_CHANNELS = 8


@dataclasses.dataclass
class LayerStats:
    """Arithmetic profile of one leaf layer at batch size 1.

    Attributes
    ----------
    flops:
        Multiply-accumulate FLOPs (2 × MACs) per batch element.
    bytes_moved:
        Input + output + parameter bytes at 4 B/element (halved in fp16).
    tc_eligible:
        Whether the layer's GEMM can run on Tensor Cores in fp16.
    channel_utilization:
        Raw lane-filling ratio ``min(1, (cin·cout)/(32·32))``; the roofline
        model raises it to the device's ``util_exponent`` — small-channel
        convs (BCAE-HT) run far below peak.
    """

    name: str
    kind: str
    flops: float
    bytes_moved: float
    params: int
    kernels: int
    tc_eligible: bool
    channel_utilization: float


@dataclasses.dataclass
class ModelTrace:
    """All leaf-layer stats of one model, batch-1 normalized."""

    model_name: str
    layers: list[LayerStats]

    @property
    def total_flops(self) -> float:
        """Summed per-batch-element FLOPs of every leaf layer."""

        return sum(layer.flops for layer in self.layers)

    @property
    def total_bytes(self) -> float:
        """Summed fp32 memory traffic of every leaf layer."""

        return sum(layer.bytes_moved for layer in self.layers)

    @property
    def total_kernels(self) -> int:
        """Total GPU kernel launches per forward pass."""

        return sum(layer.kernels for layer in self.layers)

    def tc_fraction(self) -> float:
        """Fraction of FLOPs that can run on Tensor Cores (Fig. 6D story)."""

        total = self.total_flops
        if total == 0:
            return 0.0
        return sum(l.flops for l in self.layers if l.tc_eligible) / total

    def summary(self) -> str:
        """One-line trace summary (GFLOP, MB, kernels, TC share)."""

        return (
            f"{self.model_name}: {self.total_flops / 1e9:.2f} GFLOP, "
            f"{self.total_bytes / 1e6:.1f} MB moved, {self.total_kernels} kernels, "
            f"TC-eligible FLOPs: {100 * self.tc_fraction():.1f}%"
        )


class _Tracer:
    """Records leaf-layer shapes during one forward pass."""

    def __init__(self) -> None:
        self.records: list[LayerStats] = []
        self._names: dict[int, str] = {}

    def assign_names(self, model: Module) -> None:
        for name, module in model.named_modules():
            self._names[id(module)] = name or model.__class__.__name__

    def record(self, module: Module, args: tuple, out) -> None:
        stats = _layer_stats(module, args, out, self._names.get(id(module), "?"))
        if stats is not None:
            self.records.append(stats)


def _tensor_shape(x) -> tuple[int, ...] | None:
    if isinstance(x, Tensor):
        return x.shape
    return None


def _layer_stats(module: Module, args: tuple, out, name: str) -> LayerStats | None:
    """Analytic stats for a single leaf layer (None for containers)."""

    in_shape = _tensor_shape(args[0]) if args else None
    out_shape = _tensor_shape(out)
    if in_shape is None or out_shape is None:
        return None
    f32 = 4.0
    n_in = float(np.prod(in_shape))
    n_out = float(np.prod(out_shape))

    if isinstance(module, nn.ConvNd):
        k_vol = float(np.prod(module.kernel_size))
        flops = 2.0 * n_out * module.in_channels * k_vol
        params = module.num_parameters()
        util = min(1.0, (module.in_channels * module.out_channels) / 1024.0)
        tc = (
            module.in_channels >= TC_MIN_CHANNELS
            and module.out_channels >= TC_MIN_CHANNELS
        )
        return LayerStats(
            name=name,
            kind=f"Conv{module.nd}d",
            flops=flops,
            bytes_moved=(n_in + n_out + params) * f32,
            params=params,
            kernels=1,
            tc_eligible=tc,
            channel_utilization=util,
        )
    if isinstance(module, nn.ConvTransposeNd):
        k_vol = float(np.prod(module.kernel_size))
        flops = 2.0 * n_in * module.in_channels * module.out_channels * k_vol / max(module.in_channels, 1)
        # Equivalent formulation: every input element contributes into the
        # kernel volume for every output channel.
        flops = 2.0 * n_in * module.out_channels * k_vol
        params = module.num_parameters()
        util = min(1.0, (module.in_channels * module.out_channels) / 1024.0)
        tc = (
            module.in_channels >= TC_MIN_CHANNELS
            and module.out_channels >= TC_MIN_CHANNELS
        )
        return LayerStats(
            name=name,
            kind=f"ConvT{module.nd}d",
            flops=flops,
            bytes_moved=(n_in + n_out + params) * f32,
            params=params,
            kernels=1,
            tc_eligible=tc,
            channel_utilization=util,
        )
    if isinstance(module, nn.Linear):
        flops = 2.0 * n_out * module.in_features
        params = module.num_parameters()
        return LayerStats(
            name=name, kind="Linear", flops=flops,
            bytes_moved=(n_in + n_out + params) * f32, params=params, kernels=1,
            tc_eligible=module.in_features >= TC_MIN_CHANNELS and module.out_features >= TC_MIN_CHANNELS,
            channel_utilization=min(1.0, (module.in_features * module.out_features) / 1024.0),
        )
    if isinstance(module, (nn.layers._AvgPoolNd, nn.layers._UpsampleNd)):
        return LayerStats(
            name=name, kind=module.__class__.__name__, flops=n_in,
            bytes_moved=(n_in + n_out) * f32, params=0, kernels=1,
            tc_eligible=False, channel_utilization=1.0,
        )
    if isinstance(module, nn.BatchNormNd):
        return LayerStats(
            name=name, kind="BatchNorm", flops=4.0 * n_in,
            bytes_moved=2.0 * n_in * f32, params=module.num_parameters(), kernels=1,
            tc_eligible=False, channel_utilization=1.0,
        )
    if isinstance(
        module, (nn.ReLU, nn.LeakyReLU, nn.Sigmoid, nn.Tanh, nn.RegOutputTransform)
    ):
        return LayerStats(
            name=name, kind=module.__class__.__name__, flops=2.0 * n_in,
            bytes_moved=2.0 * n_in * f32, params=0, kernels=1,
            tc_eligible=False, channel_utilization=1.0,
        )
    # Containers / Identity / heads: no leaf cost.
    return None


def trace_model(model: Module, input_shape: tuple[int, ...], name: str | None = None) -> ModelTrace:
    """Profile one forward pass of ``model`` on a zero batch of ``input_shape``.

    ``input_shape`` excludes the batch axis; stats are batch-1 normalized.
    """

    tracer = _Tracer()
    tracer.assign_names(model)
    x = Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32))
    model.eval()
    Module._tracer = tracer
    try:
        with nn.no_grad():
            model(x)
    finally:
        Module._tracer = None
    return ModelTrace(
        model_name=name or getattr(model, "model_name", model.__class__.__name__),
        layers=tracer.records,
    )


def trace_encoder(model, input_shape: tuple[int, ...], name: str | None = None) -> ModelTrace:
    """Trace only the encoder — the real-time (compression-side) component."""

    tracer = _Tracer()
    tracer.assign_names(model)
    x = Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32))
    model.eval()
    Module._tracer = tracer
    try:
        with nn.no_grad():
            model.encode(x)
    finally:
        Module._tracer = None
    return ModelTrace(
        model_name=name or getattr(model, "model_name", model.__class__.__name__),
        layers=tracer.records,
    )
