"""Table 2 — reconstruction accuracy in full- vs half-precision mode.

Paper: the differences are at the 4th–5th decimal (e.g. BCAE-2D MAE
0.151937 full vs 0.151965 half) — compressing in half precision costs
nothing in accuracy, which is why Table 1 reports half-precision numbers
and §3.4 recommends fp16 deployment.
"""

import numpy as np

from conftest import report


def test_table2_full_vs_half(benchmark, trained_models, bench_datasets):
    _train, test = bench_datasets

    def evaluate_both():
        rows = {}
        for name, trainer in trained_models.items():
            full = trainer.evaluate(test, half=False)
            half = trainer.evaluate(test, half=True)
            rows[name] = (full, half)
        return rows

    rows = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)

    paper = {
        "bcae_2d": (0.151937, 0.151965, 0.905469, 0.905326),
        "bcae_pp": (0.112347, 0.112342, 0.933817, 0.933852),
        "bcae_ht": (0.138443, 0.138441, 0.915891, 0.915780),
    }
    report()
    report("Table 2 — full vs half precision (this repo, tiny-scale training)")
    report(f"  {'model':9s} {'mode':5s} {'MAE':>9s} {'precision':>10s} {'recall':>8s}")
    for name, (full, half) in rows.items():
        report(f"  {name:9s} full  {full.mae:9.5f} {full.precision:10.5f} {full.recall:8.5f}")
        report(f"  {name:9s} half  {half.mae:9.5f} {half.precision:10.5f} {half.recall:8.5f}")
    report("  paper (MAE full/half): " + ", ".join(
        f"{n}={v[0]:.6f}/{v[1]:.6f}" for n, v in paper.items()
    ))
    report("  paper conclusion: half precision is accuracy-free — reproduced if the")
    report("  deltas below stay ~1e-3:")

    for name, (full, half) in rows.items():
        delta_mae = abs(full.mae - half.mae)
        delta_p = abs(full.precision - half.precision)
        delta_r = abs(full.recall - half.recall)
        report(
            f"  {name:9s} |ΔMAE|={delta_mae:.2e}  |Δprec|={delta_p:.2e}  |Δrec|={delta_r:.2e}"
        )
        # The paper's Table-2 point: precision mode must not move metrics.
        assert delta_mae < 5e-2 * max(full.mae, 1e-6) + 1e-3
        assert delta_p < 2e-2
        assert delta_r < 2e-2
