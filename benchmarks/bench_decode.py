"""Decode bench — compiled fast decode vs the module-graph analysis loop.

The paper's loop is bicephalous end to end: payloads written by the
counting house must be decompressed offline at comparable throughput.  This
bench measures the analysis-side fast path — both decoder heads and the
masked combine compiled by the stage-plan engine
(:class:`repro.core.FastDecoder2D` / :class:`repro.core.FastDecoder3D`),
served via ``BCAECompressor.decompress_into`` and
:class:`repro.serve.DecompressionService` — against the naive loop an
analysis user would write: one module-graph ``decompress`` call per
archived single-wedge payload.

Acceptance gates:

* the best fast configuration sustains **≥ 2×** the module-graph loop's
  wedges/s on the paper-default BCAE-2D(m=4, n=8, d=3) at tiny geometry,
  on the 3D BCAE-HT at paper-scale geometry ``(16, 192, 249)`` — the
  regime where the blocked im2col gathers carry the win — **and** on the
  original BCAE at paper-scale geometry, whose eval-mode BatchNorm stacks
  run the compiled fold/affine stages instead of the module graph
  (measured ~6×);
* reconstructions are **bit-identical** to the module-graph path for every
  payload, in every configuration;
* **thread scaling** — the same archive decoded at panel-thread counts
  1/2/4 yields byte-identical reconstructions at every width, and on
  hosts with ≥ 4 cores the widest configuration sustains **≥ 1.5×**
  single-thread throughput (the scaling gate is informational on smaller
  boxes — a 1-core container cannot demonstrate parallel speedup);
* **fused bnorm** — the original BCAE's eval-mode affine stages decode at
  least as fast through the fused one-pass kernel as through the 4-ufunc
  broadcast chain (A/B via ``fast_plan._FUSED_BNORM``), bit for bit;
* **ulp tier** — the opt-in ``precision="ulp"`` configuration decodes at
  least as fast as the bit tier (it keeps the BN→Conv folds the bit probe
  rejects), every engaged site's recorded bound stays within
  ``ULP_TIER_MAX_ULP`` grid steps, and the end-to-end reconstruction
  deviates from the bit tier by at most ``ULP_TIER_RECON_GRID_STEPS``
  stored-grid steps at scale.

Every run (including ``--smoke``) appends a machine-readable entry to the
``BENCH_decode.json`` trajectory (model, wedge shape, backend, wedges/s,
speedup) so future PRs can diff perf against prior runs.

Timings are best-of-N on both sides.  Runs under pytest (tier-2 bench
suite) and as a script::

    python benchmarks/bench_decode.py [--smoke] [--model NAME] [--paper]

``--smoke`` shrinks the stream and relaxes the speed gate (CI exercises the
round-trip wiring on busy shared runners; the 2× claim is the bench's).
``--model bcae_ht --paper`` runs one 3D paper-scale section only — the CI
smoke invocation for the 3D fast path.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

_N_WEDGES = 24
_N_WEDGES_PAPER = 4
_REPEATS = 3
_THREAD_COUNTS = (1, 2, 4)
#: Trajectory depth: runs kept in BENCH_decode.json before the oldest drop.
_MAX_RUNS = 20

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_decode.json"


def _stream(n, paper=False, seed=7):
    from repro.tpc import PAPER_GEOMETRY, TINY_GEOMETRY, generate_wedge_stream

    geometry = PAPER_GEOMETRY if paper else TINY_GEOMETRY
    return generate_wedge_stream(n, geometry=geometry, seed=seed)


def _best_of_interleaved(fns, repeats=_REPEATS):
    """Best-of timings for several callables, rounds interleaved.

    Interleaving keeps the comparison fair on shared/throttling boxes:
    every contender samples the same machine states instead of one side
    monopolizing the warm (or noisy) phase.
    """

    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def measure(model_name="bcae_2d", n_wedges=_N_WEDGES, repeats=_REPEATS,
            paper=False, model_kwargs=None):
    """Run the decode comparison for one model/geometry; returns a section.

    The section dict carries the module-graph baseline and one row per fast
    configuration (``backend``, wedges/s, speedup, bit-identity flag).
    """

    from repro.core import BCAECompressor, build_model
    from repro.serve import DecompressionService, ServiceConfig

    wedges = _stream(n_wedges, paper=paper)
    model_kwargs = model_kwargs or (
        dict(m=4, n=8, d=3) if model_name == "bcae_2d" else {}
    )
    model = build_model(model_name, wedge_spatial=wedges.shape[1:], seed=0,
                        **model_kwargs)
    # Inference mode: the original BCAE's BatchNorm must decode from
    # running statistics — also what puts it on the compiled engine.
    model.eval()
    compressor = BCAECompressor(model)

    # The archive: one payload per wedge, as a DAQ stream would write them.
    payloads = [compressor.compress(w) for w in wedges]
    reference = [compressor.decompress(c) for c in payloads]
    ref_bytes = b"".join(np.ascontiguousarray(r).tobytes() for r in reference)

    # Parity first (bit-exact), then interleaved timing rounds.
    fast = BCAECompressor(model)
    fast.decompress_into(payloads[0])  # compile + calibrate + warm workspaces
    into_identical = b"".join(
        np.ascontiguousarray(fast.decompress_into(c)).tobytes() for c in payloads
    ) == ref_bytes

    service = DecompressionService(model, ServiceConfig(max_batch=1))
    recons, _stats = service.run(payloads)
    svc_identical = b"".join(r.tobytes() for r in recons) == ref_bytes

    serial_s, into_s, svc_s = _best_of_interleaved(
        [
            lambda: [compressor.decompress(c) for c in payloads],
            lambda: [fast.decompress_into(c) for c in payloads],
            lambda: service.run(payloads, keep_recons=False),
        ],
        repeats,
    )
    serial_wps = len(wedges) / serial_s
    rows = [
        ("decompress_into", len(wedges) / into_s, into_identical),
        ("service inline", len(wedges) / svc_s, svc_identical),
    ]
    return {
        "model": model_name,
        "wedge_shape": list(wedges.shape[1:]),
        "paper_scale": bool(paper),
        "n_wedges": len(wedges),
        "module_graph_wps": serial_wps,
        "rows": [
            {
                "backend": label,
                "wedges_per_second": wps,
                "speedup_vs_module_graph": wps / serial_wps,
                "bit_identical": bool(identical),
            }
            for label, wps, identical in rows
        ],
    }


def measure_threaded(model_name="bcae_ht", n_wedges=_N_WEDGES_PAPER,
                     repeats=_REPEATS, paper=True):
    """Thread-scaling section: one archive, decoded at each panel width.

    Byte-identical reconstructions across widths are an acceptance gate on
    every host (the slot-parallel executor's determinism contract); the
    ≥ 1.5× scaling gate only applies where ≥ 4 cores exist to scale onto.
    """

    from repro.core import BCAECompressor, build_model

    wedges = _stream(n_wedges, paper=paper)
    model = build_model(model_name, wedge_spatial=wedges.shape[1:], seed=0)
    model.eval()
    comps = {t: BCAECompressor(model, panel_threads=t)
             for t in _THREAD_COUNTS}
    payloads = [comps[1].compress(w) for w in wedges]

    digests = {}
    for t, comp in comps.items():
        comp.decompress_into(payloads[0])  # compile + warm workspaces
        digests[t] = b"".join(
            np.ascontiguousarray(comp.decompress_into(c)).tobytes()
            for c in payloads
        )
    times = _best_of_interleaved(
        [lambda c=c: [c.decompress_into(p) for p in payloads]
         for c in comps.values()],
        repeats,
    )
    wps = {t: len(wedges) / s for t, s in zip(comps, times)}
    return {
        "kind": "threaded",
        "model": model_name,
        "wedge_shape": list(wedges.shape[1:]),
        "paper_scale": bool(paper),
        "n_wedges": len(wedges),
        "cpu_count": os.cpu_count(),
        "scaling_gated": (os.cpu_count() or 1) >= 4,
        "rows": [
            {
                "panel_threads": t,
                "wedges_per_second": wps[t],
                "speedup_vs_single_thread": wps[t] / wps[1],
                "bit_identical": digests[t] == digests[1],
            }
            for t in _THREAD_COUNTS
        ],
    }


def measure_fused_bnorm(n_wedges=2, repeats=_REPEATS, paper=True):
    """A/B the fused one-pass BN affine against the 4-ufunc broadcast
    chain on the original BCAE (the only zoo member with live eval-mode
    norm stacks).  Same compressor, same archive — only the run-time
    ``_FUSED_BNORM`` switch differs between timing rounds."""

    import repro.core.fast_plan as fp
    from repro.core import BCAECompressor, build_model

    wedges = _stream(n_wedges, paper=paper)
    model = build_model("bcae", wedge_spatial=wedges.shape[1:], seed=0)
    model.eval()
    comp = BCAECompressor(model)
    payloads = [comp.compress(w) for w in wedges]
    comp.decompress_into(payloads[0])  # compile + warm workspaces

    def run_with(fused):
        prev = fp._FUSED_BNORM
        fp._FUSED_BNORM = fused
        try:
            return b"".join(
                np.ascontiguousarray(comp.decompress_into(c)).tobytes()
                for c in payloads
            )
        finally:
            fp._FUSED_BNORM = prev

    identical = run_with(True) == run_with(False)
    fused_s, plain_s = _best_of_interleaved(
        [lambda: run_with(True), lambda: run_with(False)], repeats
    )
    fused_wps = len(wedges) / fused_s
    plain_wps = len(wedges) / plain_s
    return {
        "kind": "fused_bnorm",
        "model": "bcae",
        "wedge_shape": list(wedges.shape[1:]),
        "paper_scale": bool(paper),
        "n_wedges": len(wedges),
        "rows": [
            {
                "backend": "fused affine",
                "wedges_per_second": fused_wps,
                "speedup_vs_broadcast": fused_wps / plain_wps,
                "bit_identical": bool(identical),
            },
            {
                "backend": "4-ufunc broadcast",
                "wedges_per_second": plain_wps,
                "speedup_vs_broadcast": 1.0,
                "bit_identical": bool(identical),
            },
        ],
    }


def measure_ulp(model_name="bcae", n_wedges=2, repeats=_REPEATS,
                paper=True):
    """The opt-in ulp tier vs the bit default on the same archive.

    Reports the tier's decode speedup, every engaged site's recorded
    bound, and the end-to-end reconstruction deviation in stored-grid
    steps at scale — all three are gates (sites ≤ ``ULP_TIER_MAX_ULP``,
    recon ≤ ``ULP_TIER_RECON_GRID_STEPS``, speedup ≥ 1 within tolerance).
    """

    from repro.core import BCAECompressor, build_model
    from repro.core.fast_plan import (
        ULP_TIER_MAX_ULP,
        ULP_TIER_RECON_GRID_STEPS,
        grid_steps_at_scale,
    )

    wedges = _stream(n_wedges, paper=paper)
    model = build_model(model_name, wedge_spatial=wedges.shape[1:], seed=0)
    model.eval()
    comp_bit = BCAECompressor(model, precision="bit")
    comp_ulp = BCAECompressor(model, precision="ulp")
    payloads = [comp_bit.compress(w) for w in wedges]

    rec_bit = [np.array(comp_bit.decompress_into(c), copy=True)
               for c in payloads]
    rec_ulp = [np.array(comp_ulp.decompress_into(c), copy=True)
               for c in payloads]
    recon_steps = max(
        grid_steps_at_scale(u, b, comp_bit.half)
        for u, b in zip(rec_ulp, rec_bit)
    )

    sites = []
    dec = comp_ulp._fast_decoder()
    plans = [("encoder", comp_ulp._fast_encoder().plan)]
    plans += [(f"decoder.{head}", plan) for head, plan in dec.plans.items()]
    for where, plan in plans:
        for s in plan.ulp_sites:
            sites.append({
                "plan": where,
                "site": s.get("site"),
                "placement": s.get("placement") or repr(s.get("key")),
                "max_ulp": int(s["max_ulp"]),
            })

    bit_s, ulp_s = _best_of_interleaved(
        [
            lambda: [comp_bit.decompress_into(c) for c in payloads],
            lambda: [comp_ulp.decompress_into(c) for c in payloads],
        ],
        repeats,
    )
    bit_wps = len(wedges) / bit_s
    ulp_wps = len(wedges) / ulp_s
    return {
        "kind": "ulp",
        "model": model_name,
        "wedge_shape": list(wedges.shape[1:]),
        "paper_scale": bool(paper),
        "n_wedges": len(wedges),
        "bit_wps": bit_wps,
        "ulp_wps": ulp_wps,
        "speedup_vs_bit": ulp_wps / bit_wps,
        "ulp_sites": sites,
        "max_site_ulp": max((s["max_ulp"] for s in sites), default=0),
        "site_cap": ULP_TIER_MAX_ULP,
        "recon_grid_steps": int(recon_steps),
        "recon_cap": ULP_TIER_RECON_GRID_STEPS,
    }


def write_bench_json(sections, smoke, path=_BENCH_JSON, label=None):
    """Append one run to the perf-trajectory record future PRs diff against.

    The file keeps the last :data:`_MAX_RUNS` runs under ``"runs"`` so a
    reviewer can read pre/post numbers side by side; a pre-trajectory
    single-run file is absorbed as the first entry.
    """

    run = {"smoke": bool(smoke), "sections": sections}
    if label:
        run["label"] = label
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        doc = None
    if isinstance(doc, dict) and isinstance(doc.get("runs"), list):
        runs = doc["runs"]
    elif isinstance(doc, dict) and "sections" in doc:
        runs = [{"smoke": doc.get("smoke", False),
                 "sections": doc["sections"]}]
    else:
        runs = []
    runs = (runs + [run])[-_MAX_RUNS:]
    path.write_text(json.dumps(
        {"benchmark": "bench_decode", "runs": runs}, indent=2) + "\n")
    return path


def _report_lines(section):
    kind = section.get("kind", "decode")
    geom = (f"{'paper-scale' if section['paper_scale'] else 'tiny'} "
            f"geometry {tuple(section['wedge_shape'])}")
    yield ""
    if kind == "threaded":
        yield (f"Decode thread scaling — {section['model']} at {geom} "
               f"({section['cpu_count']} core(s); scaling gate "
               f"{'ON' if section['scaling_gated'] else 'informational'})")
        for row in section["rows"]:
            yield (f"    panel_threads={row['panel_threads']}: "
                   f"{row['wedges_per_second']:7.2f} w/s  "
                   f"{row['speedup_vs_single_thread']:.2f}x single-thread  "
                   f"recon {'identical' if row['bit_identical'] else 'MISMATCH'}")
        return
    if kind == "fused_bnorm":
        yield f"Decode fused bnorm A/B — {section['model']} at {geom}"
        for row in section["rows"]:
            yield (f"    {row['backend']:18s}: "
                   f"{row['wedges_per_second']:7.2f} w/s  "
                   f"{row['speedup_vs_broadcast']:.2f}x broadcast  recon "
                   f"{'identical' if row['bit_identical'] else 'MISMATCH'}")
        return
    if kind == "ulp":
        yield f"Decode ulp tier — {section['model']} at {geom}"
        yield (f"    bit tier {section['bit_wps']:7.2f} w/s, ulp tier "
               f"{section['ulp_wps']:7.2f} w/s  "
               f"({section['speedup_vs_bit']:.2f}x)")
        yield (f"    {len(section['ulp_sites'])} relaxed site(s), max "
               f"recorded bound {section['max_site_ulp']} grid step(s) "
               f"(cap {section['site_cap']}); recon deviation "
               f"{section['recon_grid_steps']} grid step(s) at scale "
               f"(cap {section['recon_cap']})")
        return
    yield f"Decode — {section['model']} at {geom}"
    yield (f"  stream: {section['n_wedges']} single-wedge payloads, "
           f"module-graph serial {section['module_graph_wps']:7.2f} w/s")
    for row in section["rows"]:
        yield (f"    fast {row['backend']:16s}: "
               f"{row['wedges_per_second']:7.2f} w/s  "
               f"speedup {row['speedup_vs_module_graph']:.2f}x  recon "
               f"{'identical' if row['bit_identical'] else 'MISMATCH'}")


#: Timing-noise slack for the A/B gates ("at least as fast"): on a busy
#: 1-core runner a true tie jitters a few percent either way.
_AB_TOL = 0.90


def _section_ok(section, gate):
    """(identical, fast_enough, best-speedup) for any section kind."""

    kind = section.get("kind", "decode")
    if kind == "threaded":
        identical = all(r["bit_identical"] for r in section["rows"])
        best = max(r["speedup_vs_single_thread"] for r in section["rows"])
        # ≥1.5× only where there are cores to scale onto.
        return identical, (best >= 1.5 if section["scaling_gated"]
                           else True), best
    if kind == "fused_bnorm":
        identical = all(r["bit_identical"] for r in section["rows"])
        best = section["rows"][0]["speedup_vs_broadcast"]
        return identical, best >= _AB_TOL, best
    if kind == "ulp":
        bounded = (section["max_site_ulp"] <= section["site_cap"]
                   and section["recon_grid_steps"] <= section["recon_cap"])
        return bounded, section["speedup_vs_bit"] >= _AB_TOL, \
            section["speedup_vs_bit"]
    identical = all(r["bit_identical"] for r in section["rows"])
    best = max(r["speedup_vs_module_graph"] for r in section["rows"])
    return identical, best >= gate, best


def test_decode_speedup_and_parity(benchmark):
    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure()
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 2.0)
    # Acceptance: bit-identical reconstructions in every configuration.
    assert identical, "recon mismatch"
    # Acceptance: >= 2x the module-graph analysis loop.
    assert fast_enough, f"fast decode only {best:.2f}x the module path"


def test_decode_3d_paper_scale(benchmark):
    """The blocked-gather regime: 3D BCAE-HT at the paper grid, ≥2×."""

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure("bcae_ht", n_wedges=2, repeats=1, paper=True)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 2.0)
    assert identical, "recon mismatch"
    assert fast_enough, f"3D paper-scale decode only {best:.2f}x"


def test_decode_original_bcae_batchnorm(benchmark):
    """The BatchNorm regime: the original BCAE's eval-mode norm stacks
    (folded conv or exact affine stages) must decode ≥2× the module graph
    through the compiled engine at paper-scale geometry, bit for bit
    (measured ~6×; at tiny geometry the affine passes and the module
    graph's allocations nearly cancel, ~1.6×)."""

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure("bcae", n_wedges=2, repeats=1, paper=True)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 2.0)
    assert identical, "recon mismatch"
    assert fast_enough, f"original-BCAE compiled decode only {best:.2f}x"


def test_decode_thread_scaling(benchmark):
    """Slot-parallel executor: byte-identical recon at widths 1/2/4;
    ≥1.5× scaling gated only on ≥4-core hosts."""

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure_threaded("bcae_ht", n_wedges=2, repeats=1,
                                        paper=True)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 1.5)
    assert identical, "recon differs across panel-thread counts"
    assert fast_enough, f"thread scaling only {best:.2f}x on ≥4 cores"


def test_decode_fused_bnorm_ab(benchmark):
    """Fused one-pass BN affine vs the 4-ufunc broadcast chain: identical
    bits, at least broadcast speed (within timing-noise tolerance)."""

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure_fused_bnorm(n_wedges=2, repeats=1, paper=True)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 1.0)
    assert identical, "fused affine diverges from the broadcast chain"
    assert fast_enough, f"fused affine only {best:.2f}x the broadcast chain"


def test_decode_ulp_tier(benchmark):
    """Opt-in ulp tier: every engaged site inside the recorded cap, recon
    within the end-to-end grid-step contract, no slower than bit."""

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure_ulp(n_wedges=2, repeats=1, paper=True)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    bounded, fast_enough, best = _section_ok(section, 1.0)
    assert bounded, (
        f"ulp bounds exceeded: max site {section['max_site_ulp']} (cap "
        f"{section['site_cap']}), recon {section['recon_grid_steps']} "
        f"(cap {section['recon_cap']})")
    assert fast_enough, f"ulp tier only {best:.2f}x the bit tier"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, relaxed speed gate (CI wiring check)")
    parser.add_argument("--model", default=None,
                        help="run a single model section (default: the full "
                             "2D-tiny + 3D-paper-scale gate set)")
    parser.add_argument("--paper", action="store_true",
                        help="paper-scale geometry (16, 192, 249) for --model")
    parser.add_argument("--wedges", type=int, default=None)
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else _REPEATS
    gate = 1.1 if args.smoke else 2.0

    plan = []
    if args.model is not None:
        n = args.wedges or (
            (2 if args.smoke else _N_WEDGES_PAPER) if args.paper
            else (8 if args.smoke else _N_WEDGES)
        )
        plan.append(lambda: measure(args.model, n_wedges=n, repeats=repeats,
                                    paper=args.paper))
    else:
        n2d = args.wedges or (8 if args.smoke else _N_WEDGES)
        plan.append(lambda: measure("bcae_2d", n_wedges=n2d, repeats=repeats,
                                    paper=False))
        if args.smoke:
            # BatchNorm wiring check: original-BCAE through the compiled
            # fold/affine stages at tiny geometry, relaxed gate.
            plan.append(lambda: measure("bcae", n_wedges=args.wedges or 4,
                                        repeats=repeats, paper=False))
            # Wiring checks for the gated sections at tiny geometry: the
            # determinism / bound gates are exact at any scale, only the
            # speed claims need the paper grid.
            plan.append(lambda: measure_threaded(
                "bcae_ht", n_wedges=args.wedges or 4, repeats=repeats,
                paper=False))
            plan.append(lambda: measure_fused_bnorm(
                n_wedges=args.wedges or 4, repeats=repeats, paper=False))
            plan.append(lambda: measure_ulp(
                n_wedges=args.wedges or 4, repeats=repeats, paper=False))
        else:
            # The blocked-gather acceptance gate: 3D decode at the paper grid.
            plan.append(lambda: measure(
                "bcae_ht", n_wedges=args.wedges or _N_WEDGES_PAPER,
                repeats=repeats, paper=True))
            # The BatchNorm acceptance gate: original-BCAE decode at the
            # paper grid (~6× — the affine stages ride the blocked gathers).
            plan.append(lambda: measure("bcae", n_wedges=args.wedges or 2,
                                        repeats=repeats, paper=True))
            # Intra-plan parallelism: identical bits at every panel width,
            # ≥1.5× scaling where the host has ≥4 cores.
            plan.append(lambda: measure_threaded(
                "bcae_ht", n_wedges=args.wedges or 2, repeats=repeats,
                paper=True))
            # Fused affine vs 4-ufunc broadcast chain, paper grid.
            plan.append(lambda: measure_fused_bnorm(
                n_wedges=args.wedges or 2, repeats=repeats, paper=True))
            # The opt-in ulp serving tier vs the bit default.
            plan.append(lambda: measure_ulp(
                n_wedges=args.wedges or 2, repeats=repeats, paper=True))

    sections = []
    failed = False
    for run in plan:
        section = run()
        sections.append(section)
        for line in _report_lines(section):
            print(line)
        kind = section.get("kind", "decode")
        name = f"{section['model']}/{kind}"
        identical, fast_enough, best = _section_ok(section, gate)
        if not identical:
            reason = ("ulp bound exceeded" if kind == "ulp"
                      else "reconstruction mismatch")
            print(f"FAIL: {name} {reason}")
            failed = True
        elif not fast_enough:
            print(f"FAIL: {name} best speedup {best:.2f}x below gate")
            failed = True
        else:
            print(f"OK: {name} best speedup {best:.2f}x")
    path = write_bench_json(sections, args.smoke)
    print(f"wrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
