"""Decode bench — compiled fast decode vs the module-graph analysis loop.

The paper's loop is bicephalous end to end: payloads written by the
counting house must be decompressed offline at comparable throughput.  This
bench measures the analysis-side fast path — both decoder heads and the
masked combine compiled by the stage-plan engine
(:class:`repro.core.FastDecoder2D` / :class:`repro.core.FastDecoder3D`),
served via ``BCAECompressor.decompress_into`` and
:class:`repro.serve.DecompressionService` — against the naive loop an
analysis user would write: one module-graph ``decompress`` call per
archived single-wedge payload.

Acceptance gates:

* the best fast configuration sustains **≥ 2×** the module-graph loop's
  wedges/s on the paper-default BCAE-2D(m=4, n=8, d=3) at tiny geometry,
  on the 3D BCAE-HT at paper-scale geometry ``(16, 192, 249)`` — the
  regime where the blocked im2col gathers carry the win — **and** on the
  original BCAE at paper-scale geometry, whose eval-mode BatchNorm stacks
  run the compiled fold/affine stages instead of the module graph
  (measured ~6×);
* reconstructions are **bit-identical** to the module-graph path for every
  payload, in every configuration.

Every run (including ``--smoke``) appends machine-readable rows to
``BENCH_decode.json`` (model, wedge shape, backend, wedges/s, speedup) so
future PRs can detect perf regressions.

Timings are best-of-N on both sides.  Runs under pytest (tier-2 bench
suite) and as a script::

    python benchmarks/bench_decode.py [--smoke] [--model NAME] [--paper]

``--smoke`` shrinks the stream and relaxes the speed gate (CI exercises the
round-trip wiring on busy shared runners; the 2× claim is the bench's).
``--model bcae_ht --paper`` runs one 3D paper-scale section only — the CI
smoke invocation for the 3D fast path.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

_N_WEDGES = 24
_N_WEDGES_PAPER = 4
_REPEATS = 3

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_decode.json"


def _stream(n, paper=False, seed=7):
    from repro.tpc import PAPER_GEOMETRY, TINY_GEOMETRY, generate_wedge_stream

    geometry = PAPER_GEOMETRY if paper else TINY_GEOMETRY
    return generate_wedge_stream(n, geometry=geometry, seed=seed)


def _best_of_interleaved(fns, repeats=_REPEATS):
    """Best-of timings for several callables, rounds interleaved.

    Interleaving keeps the comparison fair on shared/throttling boxes:
    every contender samples the same machine states instead of one side
    monopolizing the warm (or noisy) phase.
    """

    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def measure(model_name="bcae_2d", n_wedges=_N_WEDGES, repeats=_REPEATS,
            paper=False, model_kwargs=None):
    """Run the decode comparison for one model/geometry; returns a section.

    The section dict carries the module-graph baseline and one row per fast
    configuration (``backend``, wedges/s, speedup, bit-identity flag).
    """

    from repro.core import BCAECompressor, build_model
    from repro.serve import DecompressionService, ServiceConfig

    wedges = _stream(n_wedges, paper=paper)
    model_kwargs = model_kwargs or (
        dict(m=4, n=8, d=3) if model_name == "bcae_2d" else {}
    )
    model = build_model(model_name, wedge_spatial=wedges.shape[1:], seed=0,
                        **model_kwargs)
    # Inference mode: the original BCAE's BatchNorm must decode from
    # running statistics — also what puts it on the compiled engine.
    model.eval()
    compressor = BCAECompressor(model)

    # The archive: one payload per wedge, as a DAQ stream would write them.
    payloads = [compressor.compress(w) for w in wedges]
    reference = [compressor.decompress(c) for c in payloads]
    ref_bytes = b"".join(np.ascontiguousarray(r).tobytes() for r in reference)

    # Parity first (bit-exact), then interleaved timing rounds.
    fast = BCAECompressor(model)
    fast.decompress_into(payloads[0])  # compile + calibrate + warm workspaces
    into_identical = b"".join(
        np.ascontiguousarray(fast.decompress_into(c)).tobytes() for c in payloads
    ) == ref_bytes

    service = DecompressionService(model, ServiceConfig(max_batch=1))
    recons, _stats = service.run(payloads)
    svc_identical = b"".join(r.tobytes() for r in recons) == ref_bytes

    serial_s, into_s, svc_s = _best_of_interleaved(
        [
            lambda: [compressor.decompress(c) for c in payloads],
            lambda: [fast.decompress_into(c) for c in payloads],
            lambda: service.run(payloads, keep_recons=False),
        ],
        repeats,
    )
    serial_wps = len(wedges) / serial_s
    rows = [
        ("decompress_into", len(wedges) / into_s, into_identical),
        ("service inline", len(wedges) / svc_s, svc_identical),
    ]
    return {
        "model": model_name,
        "wedge_shape": list(wedges.shape[1:]),
        "paper_scale": bool(paper),
        "n_wedges": len(wedges),
        "module_graph_wps": serial_wps,
        "rows": [
            {
                "backend": label,
                "wedges_per_second": wps,
                "speedup_vs_module_graph": wps / serial_wps,
                "bit_identical": bool(identical),
            }
            for label, wps, identical in rows
        ],
    }


def write_bench_json(sections, smoke, path=_BENCH_JSON):
    """Write the perf-trajectory record future PRs diff against."""

    payload = {
        "benchmark": "bench_decode",
        "smoke": bool(smoke),
        "sections": sections,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _report_lines(section):
    yield ""
    yield (f"Decode — {section['model']} at "
           f"{'paper-scale' if section['paper_scale'] else 'tiny'} geometry "
           f"{tuple(section['wedge_shape'])}")
    yield (f"  stream: {section['n_wedges']} single-wedge payloads, "
           f"module-graph serial {section['module_graph_wps']:7.2f} w/s")
    for row in section["rows"]:
        yield (f"    fast {row['backend']:16s}: "
               f"{row['wedges_per_second']:7.2f} w/s  "
               f"speedup {row['speedup_vs_module_graph']:.2f}x  recon "
               f"{'identical' if row['bit_identical'] else 'MISMATCH'}")


def _section_ok(section, gate):
    identical = all(r["bit_identical"] for r in section["rows"])
    best = max(r["speedup_vs_module_graph"] for r in section["rows"])
    return identical, best >= gate, best


def test_decode_speedup_and_parity(benchmark):
    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure()
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 2.0)
    # Acceptance: bit-identical reconstructions in every configuration.
    assert identical, "recon mismatch"
    # Acceptance: >= 2x the module-graph analysis loop.
    assert fast_enough, f"fast decode only {best:.2f}x the module path"


def test_decode_3d_paper_scale(benchmark):
    """The blocked-gather regime: 3D BCAE-HT at the paper grid, ≥2×."""

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure("bcae_ht", n_wedges=2, repeats=1, paper=True)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 2.0)
    assert identical, "recon mismatch"
    assert fast_enough, f"3D paper-scale decode only {best:.2f}x"


def test_decode_original_bcae_batchnorm(benchmark):
    """The BatchNorm regime: the original BCAE's eval-mode norm stacks
    (folded conv or exact affine stages) must decode ≥2× the module graph
    through the compiled engine at paper-scale geometry, bit for bit
    (measured ~6×; at tiny geometry the affine passes and the module
    graph's allocations nearly cancel, ~1.6×)."""

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure("bcae", n_wedges=2, repeats=1, paper=True)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _report_lines(section):
        report(line)

    identical, fast_enough, best = _section_ok(section, 2.0)
    assert identical, "recon mismatch"
    assert fast_enough, f"original-BCAE compiled decode only {best:.2f}x"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, relaxed speed gate (CI wiring check)")
    parser.add_argument("--model", default=None,
                        help="run a single model section (default: the full "
                             "2D-tiny + 3D-paper-scale gate set)")
    parser.add_argument("--paper", action="store_true",
                        help="paper-scale geometry (16, 192, 249) for --model")
    parser.add_argument("--wedges", type=int, default=None)
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else _REPEATS
    gate = 1.1 if args.smoke else 2.0

    plan = []
    if args.model is not None:
        n = args.wedges or (
            (2 if args.smoke else _N_WEDGES_PAPER) if args.paper
            else (8 if args.smoke else _N_WEDGES)
        )
        plan.append((args.model, n, args.paper))
    else:
        plan.append(("bcae_2d", args.wedges or (8 if args.smoke else _N_WEDGES),
                     False))
        if args.smoke:
            # BatchNorm wiring check: original-BCAE through the compiled
            # fold/affine stages at tiny geometry, relaxed gate.
            plan.append(("bcae", args.wedges or 4, False))
        else:
            # The blocked-gather acceptance gate: 3D decode at the paper grid.
            plan.append(("bcae_ht", args.wedges or _N_WEDGES_PAPER, True))
            # The BatchNorm acceptance gate: original-BCAE decode at the
            # paper grid (~6× — the affine stages ride the blocked gathers).
            plan.append(("bcae", args.wedges or 2, True))

    sections = []
    failed = False
    for model_name, n, paper in plan:
        section = measure(model_name, n_wedges=n, repeats=repeats, paper=paper)
        sections.append(section)
        for line in _report_lines(section):
            print(line)
        identical, fast_enough, best = _section_ok(section, gate)
        if not identical:
            print(f"FAIL: {model_name} reconstruction mismatch")
            failed = True
        elif not fast_enough:
            print(f"FAIL: {model_name} best fast decode {best:.2f}x < "
                  f"gate {gate}x")
            failed = True
        else:
            print(f"OK: {model_name} best fast decode {best:.2f}x module "
                  f"path (gate {gate}x)")
    path = write_bench_json(sections, args.smoke)
    print(f"wrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
