"""Decode bench — compiled fast decode vs the module-graph analysis loop.

The paper's loop is bicephalous end to end: payloads written by the
counting house must be decompressed offline at comparable throughput.  This
bench measures the analysis-side fast path — both decoder heads and the
masked combine compiled by :class:`repro.core.FastDecoder2D` through the
stage-plan engine, served via ``BCAECompressor.decompress_into`` and
:class:`repro.serve.DecompressionService` — against the naive loop an
analysis user would write: one module-graph ``decompress`` call per
archived single-wedge payload.

Acceptance gates:

* the best fast configuration sustains **≥ 2×** the module-graph loop's
  wedges/s on the paper-default BCAE-2D(m=4, n=8, d=3);
* reconstructions are **bit-identical** to the module-graph path for every
  payload, in every configuration.

Timings are best-of-N on both sides.  Runs under pytest (tier-2 bench
suite) and as a script::

    python benchmarks/bench_decode.py [--smoke]

``--smoke`` shrinks the stream and relaxes the speed gate (CI exercises the
round-trip wiring on busy shared runners; the 2× claim is the bench's).
"""

import argparse
import sys
import time

import numpy as np

_N_WEDGES = 24
_REPEATS = 3


def _stream(n=_N_WEDGES, seed=7):
    from repro.tpc import TINY_GEOMETRY, generate_wedge_stream

    return generate_wedge_stream(n, geometry=TINY_GEOMETRY, seed=seed)


def _best_of_interleaved(fns, repeats=_REPEATS):
    """Best-of timings for several callables, rounds interleaved.

    Interleaving keeps the comparison fair on shared/throttling boxes:
    every contender samples the same machine states instead of one side
    monopolizing the warm (or noisy) phase.
    """

    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def measure(n_wedges=_N_WEDGES, repeats=_REPEATS, model_kwargs=None):
    """Run the decode comparison; returns (serial_wps, rows).

    ``rows`` are ``(label, wedges_per_second, bit_identical)`` for each
    fast configuration.
    """

    from repro.core import BCAECompressor, build_model
    from repro.serve import DecompressionService, ServiceConfig

    wedges = _stream(n_wedges)
    model_kwargs = model_kwargs or dict(m=4, n=8, d=3)
    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0,
                        **model_kwargs)
    compressor = BCAECompressor(model)

    # The archive: one payload per wedge, as a DAQ stream would write them.
    payloads = [compressor.compress(w) for w in wedges]
    reference = [compressor.decompress(c) for c in payloads]
    ref_bytes = b"".join(np.ascontiguousarray(r).tobytes() for r in reference)

    # Parity first (bit-exact), then interleaved timing rounds.
    fast = BCAECompressor(model)
    fast.decompress_into(payloads[0])  # compile + warm workspaces
    into_identical = b"".join(
        np.ascontiguousarray(fast.decompress_into(c)).tobytes() for c in payloads
    ) == ref_bytes

    service = DecompressionService(model, ServiceConfig(max_batch=1))
    recons, _stats = service.run(payloads)
    svc_identical = b"".join(r.tobytes() for r in recons) == ref_bytes

    serial_s, into_s, svc_s = _best_of_interleaved(
        [
            lambda: [compressor.decompress(c) for c in payloads],
            lambda: [fast.decompress_into(c) for c in payloads],
            lambda: service.run(payloads, keep_recons=False),
        ],
        repeats,
    )
    serial_wps = len(wedges) / serial_s
    rows = [
        ("decompress_into", len(wedges) / into_s, into_identical),
        ("service inline", len(wedges) / svc_s, svc_identical),
    ]
    return serial_wps, rows


def _report_lines(serial_wps, rows, n_wedges):
    yield ""
    yield "Decode — compiled fast path vs module-graph analysis loop"
    yield f"  stream: {n_wedges} single-wedge payloads (tiny geometry), best of {_REPEATS}"
    yield f"  BCAE-2D(m=4,n=8,d=3): module-graph serial {serial_wps:7.1f} w/s"
    for label, wps, identical in rows:
        yield (f"    fast {label:16s}: {wps:7.1f} w/s  "
               f"speedup {wps / serial_wps:.2f}x  recon "
               f"{'identical' if identical else 'MISMATCH'}")


def test_decode_speedup_and_parity(benchmark):
    from conftest import report

    results = {}

    def measure_all():
        results["r"] = measure()
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    serial_wps, rows = results["r"]
    for line in _report_lines(serial_wps, rows, _N_WEDGES):
        report(line)

    # Acceptance: bit-identical reconstructions in every configuration.
    assert all(identical for _l, _w, identical in rows), "recon mismatch"
    # Acceptance: >= 2x the module-graph analysis loop.
    best = max(wps for _l, wps, _i in rows)
    assert best >= 2.0 * serial_wps, (
        f"fast decode {best:.1f} w/s < 2x module path {serial_wps:.1f} w/s"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, relaxed speed gate (CI wiring check)")
    parser.add_argument("--wedges", type=int, default=None)
    args = parser.parse_args(argv)

    n = args.wedges or (8 if args.smoke else _N_WEDGES)
    repeats = 1 if args.smoke else _REPEATS
    gate = 1.1 if args.smoke else 2.0
    serial_wps, rows = measure(n_wedges=n, repeats=repeats)
    for line in _report_lines(serial_wps, rows, n):
        print(line)
    if not all(identical for _l, _w, identical in rows):
        print("FAIL: reconstruction mismatch")
        return 1
    best = max(wps for _l, wps, _i in rows)
    if best < gate * serial_wps:
        print(f"FAIL: best fast decode {best:.1f} w/s < {gate}x "
              f"module path {serial_wps:.1f} w/s")
        return 1
    print(f"OK: best fast decode {best / serial_wps:.2f}x module path "
          f"(gate {gate}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
