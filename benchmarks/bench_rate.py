"""Rate bench — occupancy-adaptive codec selection vs the all-BCAE path.

TPC occupancy is far from uniform (paper §1: central-membrane wedges see
the dense tracks; outer sectors are mostly empty), yet the BCAE spends a
fixed-size code on every wedge.  The adaptive tier routes sparse wedges
to a coordinate-list codec and keeps the BCAE for the dense majority; on
a mixed-occupancy stream that buys aggregate compression ratio without
giving up throughput (the sparse route skips model inference entirely).

Sections:

1. **rate tradeoff** — the rate–distortion–throughput trajectory: sweep
   the occupancy threshold from 0 (all-BCAE) upward; each row records the
   codec mix, aggregate ratio, wedges/s and the reconstruction error on
   each route;
2. **adaptive vs all-BCAE** — the acceptance comparison at the default
   threshold, plus byte parity of every BCAE-routed record against the
   plain fixed-rate path (the tier must never change the bytes the model
   produces);
3. **budget sweep** — stream-level bandwidth budgets
   (``--rate-budget-mbps``) tightening until the estimator overrides the
   occupancy route, with the decision ledger staying deterministic.

Acceptance gates:

* every BCAE-routed record byte-identical to the all-BCAE payload, every
  mixed batch decodes, ledger lengths match the stream (always, smoke
  included);
* **full mode** (``REPRO_FULL=1``, paper-geometry wedges): adaptive
  aggregate ratio ≥ 1.3× the all-BCAE ratio at equal-or-better
  throughput on the 50/50 mixed-occupancy stream.

Every run appends machine-readable sections to ``BENCH_rate.json``.
Runs under pytest (tier-2 bench suite) and as a script::

    python benchmarks/bench_rate.py [--smoke]
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

_REPEATS = 3
#: Trajectory depth: runs kept in BENCH_rate.json before the oldest drop.
_MAX_RUNS = 20

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_rate.json"

_SMOKE_SPATIAL = (16, 24, 30)
_FULL_SPATIAL = (16, 192, 249)

#: Thresholds swept for the rate–distortion–throughput trajectory
#: (0.0 = all-BCAE; the policy default is 0.05).
_THRESHOLDS = (0.0, 0.02, 0.05, 0.10)


def _mixed_stream(n, spatial, sparse_fraction=0.5, sparse_occ=0.005, seed=7):
    """Fixed-RNG stream: ``sparse_fraction`` of wedges at ``sparse_occ``
    occupancy, the rest dense (~50%), interleaved deterministically.
    Two wedges sit at ~7% occupancy — above the default threshold (BCAE
    route) but cheap classically, so tight budgets and high thresholds
    visibly change the mix."""

    rng = np.random.default_rng(seed)
    w = rng.integers(0, 1024, size=(n,) + tuple(spatial)).astype(np.uint16)
    w[w < 500] = 0
    n_sparse = int(round(n * sparse_fraction))
    for i in range(n_sparse):
        j = (i * 2 + 1) % n  # interleave sparse among dense
        mask = rng.random(spatial) < sparse_occ
        hits = rng.integers(1, 1024, size=spatial)
        w[j] = np.where(mask, hits, 0).astype(np.uint16)
    for j in (n - 2, n - 4):  # mid-occupancy pair (dense slots)
        if j > 0:
            mask = rng.random(spatial) < 0.07
            hits = rng.integers(1, 1024, size=spatial)
            w[j] = np.where(mask, hits, 0).astype(np.uint16)
    return w


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _build(spatial, threshold=None, budget_mbps=None):
    """(inner BCAE compressor, adaptive tier) on the bench model."""

    from repro.core import BCAECompressor, build_model
    from repro.rate import AdaptiveCompressor, OccupancyPolicy, RateBudget

    kwargs = dict(m=2, n=2, d=2) if spatial == _SMOKE_SPATIAL else dict(
        m=1, n=1, d=1
    )
    model = build_model("bcae_2d", wedge_spatial=spatial, seed=0, **kwargs)
    model.eval()
    inner = BCAECompressor(model, half=True)
    policy = OccupancyPolicy(
        sparse_occupancy=0.05 if threshold is None else threshold,
        budget=RateBudget(budget_mbps) if budget_mbps else None,
    )
    return inner, AdaptiveCompressor(
        BCAECompressor(model, half=True), policy
    )


# ----------------------------------------------------------------------
# section 1: rate–distortion–throughput trajectory over the threshold
# ----------------------------------------------------------------------

def tradeoff_section(wedges, thresholds=_THRESHOLDS, repeats=_REPEATS):
    from repro.rate import BCAE_CODEC_ID, aggregate_ratio
    from repro.tpc import log_transform

    spatial = wedges.shape[1:]
    logged = log_transform(wedges)
    rows = []
    for threshold in thresholds:
        _inner, adaptive = _build(spatial, threshold=threshold)
        compressed = adaptive.compress(wedges)  # warm + measured artifact
        seconds = _best_of(lambda: adaptive.compress(wedges), repeats)
        recon = adaptive.decompress(compressed)
        err = np.abs(recon - logged)
        classical = [i for i, c in enumerate(compressed.codec_ids)
                     if c != BCAE_CODEC_ID]
        rows.append({
            "threshold": threshold,
            "n_classical": len(classical),
            "n_bcae": compressed.n_wedges - len(classical),
            "aggregate_ratio": aggregate_ratio([compressed], spatial),
            "wedges_per_second": len(wedges) / seconds,
            "mse_log": float(np.mean(err ** 2)),
            "classical_max_err_log": (
                float(max(err[i].max() for i in classical))
                if classical else 0.0
            ),
        })
    return {
        "section": "rate_tradeoff",
        "n_wedges": len(wedges),
        "wedge_shape": list(spatial),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# section 2: adaptive vs all-BCAE — the acceptance comparison
# ----------------------------------------------------------------------

def adaptive_vs_bcae_section(wedges, repeats=_REPEATS):
    """Default-threshold adaptive tier against the plain fixed-rate path:
    ratio gain, throughput gain, and byte parity of every routed record."""

    from repro.rate import BCAE_CODEC_ID, aggregate_ratio
    from repro.rate.records import record_views

    spatial = wedges.shape[1:]
    inner, adaptive = _build(spatial)

    mixed = adaptive.compress(wedges)      # warm both paths
    full = inner.compress(wedges)
    record = full.nbytes // full.n_wedges
    views = record_views(mixed)
    payload = bytes(full.payload)
    routed = [i for i, c in enumerate(mixed.codec_ids)
              if c == BCAE_CODEC_ID]
    parity = all(
        bytes(views[i]) == payload[i * record:(i + 1) * record]
        for i in routed
    )
    decodes = adaptive.decompress(mixed).shape == (
        (len(wedges),) + tuple(spatial)
    )

    bcae_s = _best_of(lambda: inner.compress(wedges), repeats)
    adaptive_s = _best_of(lambda: adaptive.compress(wedges), repeats)
    bcae_ratio = aggregate_ratio([full], spatial)
    adaptive_ratio = aggregate_ratio([mixed], spatial)
    return {
        "section": "adaptive_vs_bcae",
        "n_wedges": len(wedges),
        "wedge_shape": list(spatial),
        "n_sparse_routed": len(wedges) - len(routed),
        "bcae": {"aggregate_ratio": bcae_ratio,
                 "wedges_per_second": len(wedges) / bcae_s},
        "adaptive": {"aggregate_ratio": adaptive_ratio,
                     "wedges_per_second": len(wedges) / adaptive_s},
        "ratio_gain": adaptive_ratio / bcae_ratio,
        "throughput_gain": bcae_s / adaptive_s,
        "bcae_records_bit_identical": bool(parity),
        "mixed_batch_decodes": bool(decodes),
        "ledger_complete": len(mixed.decisions) == len(wedges),
    }


# ----------------------------------------------------------------------
# section 3: bandwidth budgets — estimator-driven overrides, determinism
# ----------------------------------------------------------------------

def budget_section(wedges, budgets_mbps=(None, 50.0, 0.001)):
    from repro.rate import BCAE_CODEC_ID, aggregate_ratio

    spatial = wedges.shape[1:]
    rows = []
    deterministic = True
    for mbps in budgets_mbps:
        _inner, adaptive = _build(spatial, budget_mbps=mbps)
        a = adaptive.compress(wedges)
        b = adaptive.compress(wedges)
        deterministic = deterministic and (
            a.decisions == b.decisions
            and bytes(a.payload) == bytes(b.payload)
        )
        rows.append({
            "budget_mbps": mbps,
            "n_classical": sum(1 for c in a.codec_ids
                               if c != BCAE_CODEC_ID),
            "aggregate_ratio": aggregate_ratio([a], spatial),
            "mean_record_bytes": sum(a.record_sizes) / a.n_wedges,
        })
    return {
        "section": "rate_budget",
        "n_wedges": len(wedges),
        "rows": rows,
        "deterministic": bool(deterministic),
    }


# ----------------------------------------------------------------------
# reporting / gates / entry points
# ----------------------------------------------------------------------

def write_bench_json(sections, smoke, path=_BENCH_JSON, label=None):
    """Append one run to the perf-trajectory record future PRs diff
    against (last :data:`_MAX_RUNS` runs kept under ``"runs"``)."""

    run = {"smoke": bool(smoke), "sections": sections}
    if label:
        run["label"] = label
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        doc = None
    if isinstance(doc, dict) and isinstance(doc.get("runs"), list):
        runs = doc["runs"]
    else:
        runs = []
    runs = (runs + [run])[-_MAX_RUNS:]
    path.write_text(json.dumps(
        {"benchmark": "bench_rate", "runs": runs}, indent=2) + "\n")
    return path


def _tradeoff_lines(section):
    yield ""
    yield ("Rate tradeoff — occupancy threshold sweep "
           f"({section['n_wedges']} wedges {tuple(section['wedge_shape'])})")
    yield ("  thresh  mix (bcae/classical)   ratio    wedges/s   "
           "mse(log)  classical max|err|")
    for row in section["rows"]:
        yield (f"  {row['threshold']:5.2f}   {row['n_bcae']:3d} / "
               f"{row['n_classical']:3d}            "
               f"{row['aggregate_ratio']:7.2f}  {row['wedges_per_second']:8.1f}   "
               f"{row['mse_log']:.2e}  {row['classical_max_err_log']:.3f}")


def _adaptive_lines(section):
    yield ""
    yield ("Adaptive vs all-BCAE — default threshold, "
           f"{section['n_sparse_routed']}/{section['n_wedges']} wedges "
           "routed classical")
    for label in ("bcae", "adaptive"):
        row = section[label]
        yield (f"  {label:8s}: ratio {row['aggregate_ratio']:7.2f}  "
               f"{row['wedges_per_second']:8.1f} w/s")
    yield (f"  gains: {section['ratio_gain']:.2f}x ratio at "
           f"{section['throughput_gain']:.2f}x throughput; BCAE records "
           f"{'identical' if section['bcae_records_bit_identical'] else 'MISMATCH'}")


def _budget_lines(section):
    yield ""
    yield "Bandwidth budgets — estimator overrides as the budget tightens"
    for row in section["rows"]:
        label = ("none" if row["budget_mbps"] is None
                 else f"{row['budget_mbps']:g} Mbps")
        yield (f"  budget {label:>10s}: {row['n_classical']:3d} classical, "
               f"ratio {row['aggregate_ratio']:7.2f}, "
               f"mean record {row['mean_record_bytes']:8.0f} B")
    yield ("  decision ledgers deterministic: "
           + ("yes" if section["deterministic"] else "NO"))


def test_rate_adaptive_parity(benchmark):
    """Tier-2 gate: routed records byte-identical, mixed batches decode,
    and the mixed stream beats the all-BCAE ratio on the tiny geometry."""

    from conftest import report

    wedges = _mixed_stream(12, _SMOKE_SPATIAL)
    results = {}

    def measure_all():
        results["r"] = adaptive_vs_bcae_section(wedges, repeats=1)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _adaptive_lines(section):
        report(line)
    assert section["bcae_records_bit_identical"]
    assert section["mixed_batch_decodes"]
    assert section["ledger_complete"]
    assert section["n_sparse_routed"] > 0
    assert section["ratio_gain"] > 1.0


def main(argv=None) -> int:
    import os

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny stream, wiring-only gates (CI check)")
    args = parser.parse_args(argv)

    full = (not args.smoke) and os.environ.get("REPRO_FULL", "0") == "1"
    spatial = _FULL_SPATIAL if full else _SMOKE_SPATIAL
    n_wedges = 16 if full else 12
    repeats = _REPEATS if full else 1
    wedges = _mixed_stream(n_wedges, spatial)

    sections = []
    failed = False

    section = tradeoff_section(wedges, repeats=repeats)
    sections.append(section)
    for line in _tradeoff_lines(section):
        print(line)
    baseline = section["rows"][0]
    best = max(section["rows"], key=lambda r: r["aggregate_ratio"])
    print(f"OK: trajectory swept {len(section['rows'])} thresholds "
          f"(ratio {baseline['aggregate_ratio']:.2f} -> "
          f"{best['aggregate_ratio']:.2f})")

    section = adaptive_vs_bcae_section(wedges, repeats=repeats)
    sections.append(section)
    for line in _adaptive_lines(section):
        print(line)
    if not (section["bcae_records_bit_identical"]
            and section["mixed_batch_decodes"]
            and section["ledger_complete"]):
        print("FAIL: adaptive tier parity (records/decode/ledger)")
        failed = True
    else:
        print("OK: BCAE records byte-identical, mixed batch decodes, "
              "ledger complete")
    # The ratio/throughput claims need paper-geometry records (the tiny
    # BCAE code is already small, so the sparse win is modest there);
    # gate them in full mode only, like the other benches.
    if full:
        if section["ratio_gain"] < 1.3:
            print(f"FAIL: adaptive ratio {section['ratio_gain']:.2f}x "
                  "< gate 1.3x all-BCAE")
            failed = True
        elif section["throughput_gain"] < 1.0:
            print(f"FAIL: adaptive throughput {section['throughput_gain']:.2f}x "
                  "< gate 1.0x all-BCAE")
            failed = True
        else:
            print(f"OK: adaptive {section['ratio_gain']:.2f}x ratio at "
                  f"{section['throughput_gain']:.2f}x throughput "
                  "(gates 1.3x / 1.0x)")
    else:
        print(f"OK: ratio gain wiring verified ({section['ratio_gain']:.2f}x; "
              "1.3x gate is full-mode only)")

    section = budget_section(wedges)
    sections.append(section)
    for line in _budget_lines(section):
        print(line)
    if not section["deterministic"]:
        print("FAIL: budgeted decision ledgers not deterministic")
        failed = True
    else:
        print("OK: budgeted selection deterministic across reruns")

    path = write_bench_json(sections, args.smoke)
    print(f"\nwrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
