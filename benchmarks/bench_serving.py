"""Serving bench — micro-batched service vs serial single-wedge compression.

The paper's deployment argument (§1, §3.2) is throughput: the encoder must
keep up with streaming readout.  This bench measures the first executable
slice of that system, :class:`repro.serve.StreamingCompressionService`
(micro-batching + persistent fast-path workspaces + optional worker pool),
against the naive loop a non-serving user would write — one
``BCAECompressor.compress`` call per wedge — on the same synthetic stream.

Acceptance gates:

* the service sustains **≥ 2×** the serial wedges/s (asserted on the
  deepest encoder of the paper's Figure-6E/7 grid, BCAE-2D(m=7, n=8, d=3),
  where per-call overheads bite hardest; the paper-default m=4 is reported
  alongside);
* payload bytes are **identical** to the serial path for every wedge.

Timings are best-of-N on both sides (see ``repro.perf.timing``).
"""

import time

import numpy as np

from conftest import report

from repro.core import BCAECompressor, build_model
from repro.serve import ServiceConfig, StreamingCompressionService

_N_WEDGES = 48
_REPEATS = 3


def _stream(n=_N_WEDGES, seed=7):
    """A fixed synthetic sparse-wedge stream on the tiny geometry."""

    from repro.tpc import TINY_GEOMETRY, generate_wedge_stream

    return generate_wedge_stream(n, geometry=TINY_GEOMETRY, seed=seed)


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(model_kwargs, wedges, service_configs):
    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0, **model_kwargs)
    compressor = BCAECompressor(model)

    serial: list = []

    def run_serial():
        serial.clear()
        serial.extend(compressor.compress(w) for w in wedges)

    run_serial()  # warm
    serial_s = _best_of(run_serial)
    serial_wps = len(wedges) / serial_s
    serial_bytes = b"".join(c.payload for c in serial)

    rows = []
    for label, config in service_configs:
        service = StreamingCompressionService(model, config)
        service.run(wedges)  # warm workspaces
        payloads, _ = service.run(wedges)
        service_bytes = b"".join(bytes(p.payload) for p in payloads)
        identical = service_bytes == serial_bytes

        def run_service():
            service.run(wedges, keep_payloads=False)

        service_s = _best_of(run_service)
        rows.append((label, len(wedges) / service_s, identical))
    return serial_wps, rows


def test_serving_speedup_and_parity(benchmark):
    wedges = _stream()
    configs = [
        ("inline b16", ServiceConfig(max_batch=16, workers=0)),
        ("pool2  b16", ServiceConfig(max_batch=16, workers=2)),
    ]

    results = {}

    def measure_all():
        results["deep"] = _measure(dict(m=7, n=8, d=3), wedges, configs)
        results["default"] = _measure(dict(m=4, n=8, d=3), wedges, configs)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)

    report()
    report("Serving — micro-batched service vs serial single-wedge compress")
    report(f"  stream: {_N_WEDGES} synthetic wedges {wedges.shape[1:]}, best of {_REPEATS}")
    for name, mkw in (("deep", "BCAE-2D(m=7,n=8,d=3)"), ("default", "BCAE-2D(m=4,n=8,d=3)")):
        serial_wps, rows = results[name]
        report(f"  {mkw}: serial {serial_wps:7.1f} w/s")
        for label, wps, identical in rows:
            report(
                f"    service {label}: {wps:7.1f} w/s  "
                f"speedup {wps / serial_wps:.2f}x  payloads "
                f"{'identical' if identical else 'MISMATCH'}"
            )

    # Acceptance: every configuration byte-identical to the serial path.
    for name in ("deep", "default"):
        _wps, rows = results[name]
        assert all(identical for _l, _w, identical in rows), f"{name}: payload mismatch"

    # Acceptance: >= 2x serial throughput on the deep-grid encoder.
    serial_wps, rows = results["deep"]
    best = max(wps for _l, wps, _i in rows)
    assert best >= 2.0 * serial_wps, (
        f"service {best:.1f} w/s < 2x serial {serial_wps:.1f} w/s"
    )
    # The paper-default encoder must still see a solid win.
    serial_wps_d, rows_d = results["default"]
    best_d = max(wps for _l, wps, _i in rows_d)
    assert best_d >= 1.5 * serial_wps_d


def test_serving_latency_budget(benchmark):
    """DAQ-timed replay: the batcher respects the accumulation budget."""

    from repro.daq import DAQConfig, StreamingCompressionSim
    from repro.serve import replay_stream

    wedges = _stream(n=30)
    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0, m=2, n=2, d=2)
    sim = StreamingCompressionSim(
        DAQConfig(frame_rate_hz=1000.0, wedges_per_frame=3), seed=1
    )
    service = StreamingCompressionService(
        model, ServiceConfig(max_batch=16, max_delay_s=2e-3)
    )

    def serve():
        return service.run(replay_stream(sim.wedge_stream(wedges)))

    _payloads, stats = benchmark.pedantic(serve, rounds=1, iterations=1)

    report()
    report("Serving — 1 kHz x 3 replay under a 2 ms accumulation budget")
    report(f"  {stats.row()}")
    report(f"  batch sizes: {[r.n_wedges for r in stats.records]}")
    assert stats.n_wedges == 30
    assert all(r.n_wedges <= 16 for r in stats.records)
    assert stats.n_batches >= 3  # the budget must split a 30-wedge stream
