"""Serving bench — the micro-batched service, and the process hand-off.

The paper's deployment argument (§1, §3.2) is throughput under a wall-clock
budget: the encoder must keep up with streaming readout.  This bench
measures three slices of the serving system:

1. **service vs serial** — :class:`repro.serve.StreamingCompressionService`
   (micro-batching + persistent fast-path workspaces + optional pool)
   against the naive loop a non-serving user would write, one
   ``BCAECompressor.compress`` call per wedge;
2. **process hand-off** — the shared-memory slab transport against the
   pickle transport on **paper-scale payloads**, measured through
   :class:`repro.serve.HandoffProbeService` (the pool engine with the model
   call replaced by a checksum) so the comparison isolates what actually
   changed: serialization and copies per unit.  End-to-end numbers with a
   real encoder are reported alongside for context — there, model compute
   (hundreds of ms/unit on CPU) dominates both transports equally;
3. **fault recovery** — the supervised process backend with every N-th
   unit SIGKILLing its own worker (``fail_attempts=1``, so each retry
   succeeds) against the same stream fault-free: the gap is pure
   recovery overhead — pool rebuild, slab-ring quarantine, serial
   re-drive of the in-flight window, and the charged retry;
4. **async gateway** — the asyncio ingestion path on a wall-clock-paced
   replay: byte parity with the serial path plus batch-latency percentiles
   under the monotonic deadline budget;
5. **sharded gateway** — N socket producers against the multi-shard
   :class:`repro.serve.ServingGateway`: aggregate throughput at 1 vs 4
   shards, every response frame byte-identical to the inline per-wedge
   codes.

Acceptance gates:

* service ≥ 2× serial wedges/s on the deep Figure-6E/7 encoder, payloads
  byte-identical (as before);
* shm hand-off ≥ 1.5× the pickle hand-off on paper-scale payloads;
* fault recovery: all checksums correct, zero leaked slabs, and the
  degraded run ≥ 0.5× fault-free throughput;
* async gateway payloads byte-identical to the serial path;
* sharded gateway: response frames byte-identical under every shard
  count, and (full mode, multi-core) ≥ 1.5× aggregate throughput going
  1 → 4 shards with 8 producers.

Every run (including ``--smoke``) writes machine-readable sections to
``BENCH_serving.json`` so future PRs can diff perf trajectories.  Runs
under pytest (tier-2 bench suite) and as a script::

    python benchmarks/bench_serving.py [--smoke]

``--smoke`` shrinks streams and relaxes the speed gates (CI exercises the
wiring on busy shared runners; the 2×/1.5× claims are the bench's).
"""

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

_N_WEDGES = 48
_REPEATS = 3
_HANDOFF_UNITS = 24
_HANDOFF_SHAPE = (4, 16, 192, 249)  # paper-geometry wedge batches, uint16
#: Trajectory depth: runs kept in BENCH_serving.json before the oldest drop.
_MAX_RUNS = 20

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _stream(n=_N_WEDGES, seed=7):
    """A fixed synthetic sparse-wedge stream on the tiny geometry."""

    from repro.tpc import TINY_GEOMETRY, generate_wedge_stream

    return generate_wedge_stream(n, geometry=TINY_GEOMETRY, seed=seed)


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_of_interleaved(fns, repeats):
    """Interleaved best-of rounds: every contender samples the same machine
    states instead of one side monopolizing the warm (or noisy) phase."""

    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# section 1: micro-batched service vs serial single-wedge compression
# ----------------------------------------------------------------------

def measure_service(model_kwargs, wedges, service_configs, repeats=_REPEATS):
    from repro.core import BCAECompressor, build_model
    from repro.serve import StreamingCompressionService

    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0, **model_kwargs)
    compressor = BCAECompressor(model)

    serial: list = []

    def run_serial():
        serial.clear()
        serial.extend(compressor.compress(w) for w in wedges)

    run_serial()  # warm
    serial_s = _best_of(run_serial, repeats)
    serial_wps = len(wedges) / serial_s
    serial_bytes = b"".join(c.payload for c in serial)

    rows = []
    for label, config in service_configs:
        service = StreamingCompressionService(model, config)
        service.run(wedges)  # warm workspaces
        payloads, _ = service.run(wedges)
        service_bytes = b"".join(bytes(p.payload) for p in payloads)
        identical = service_bytes == serial_bytes

        def run_service():
            service.run(wedges, keep_payloads=False)

        service_s = _best_of(run_service, repeats)
        rows.append({
            "label": label,
            "wedges_per_second": len(wedges) / service_s,
            "speedup_vs_serial": (len(wedges) / service_s) / serial_wps,
            "bit_identical": bool(identical),
        })
    return {"serial_wps": serial_wps, "rows": rows}


def service_section(wedges, repeats=_REPEATS):
    from repro.serve import ServiceConfig

    configs = [
        ("inline b16", ServiceConfig(max_batch=16, workers=0)),
        ("pool2  b16", ServiceConfig(max_batch=16, workers=2)),
    ]
    return {
        "section": "service_vs_serial",
        "n_wedges": len(wedges),
        "wedge_shape": list(wedges.shape[1:]),
        "deep": measure_service(dict(m=7, n=8, d=3), wedges, configs, repeats),
        "default": measure_service(dict(m=4, n=8, d=3), wedges, configs, repeats),
    }


# ----------------------------------------------------------------------
# section 2: process hand-off — shm slabs vs pickle, paper-scale payloads
# ----------------------------------------------------------------------

def handoff_section(n_units=_HANDOFF_UNITS, unit_shape=_HANDOFF_SHAPE,
                    repeats=_REPEATS):
    """Time the process-boundary round trip of paper-scale payload units.

    The probe worker touches every input byte and acks with a float, so
    per-unit cost is transport + checksum on both sides; the transports
    differ only in how the bytes cross.  Units are uint16 wedge batches of
    ``unit_shape`` (~6 MiB each at the paper geometry defaults).
    """

    from repro.serve import HandoffProbeService, ServiceConfig

    rng = np.random.default_rng(3)
    arrays = [
        rng.integers(0, 1024, size=unit_shape).astype(np.uint16)
        for _ in range(n_units)
    ]
    unit_mb = arrays[0].nbytes / (1 << 20)
    expected = [float(a.sum(dtype=np.float64)) for a in arrays]

    services = {
        "shm": HandoffProbeService(ServiceConfig(
            workers=1, backend="process", inflight=4,
            shm_slab_mb=max(16.0, unit_mb + 1),
        )),
        "pickle": HandoffProbeService(ServiceConfig(
            workers=1, backend="process", inflight=4, transport="pickle",
        )),
    }

    rows = {}
    for label, probe in services.items():
        results, stats = probe.run(arrays, keep_results=True)  # warm + verify
        assert results == expected, f"{label} checksum mismatch"
        assert all(r.transport == label for r in stats.records), (
            f"{label}: units crossed as "
            f"{sorted({r.transport for r in stats.records})}"
        )
        rows[label] = {"correct": True}

    shm_s, pickle_s = _best_of_interleaved(
        [
            lambda: services["shm"].run(arrays),
            lambda: services["pickle"].run(arrays),
        ],
        repeats,
    )
    rows["shm"].update(units_per_second=n_units / shm_s, seconds=shm_s)
    rows["pickle"].update(units_per_second=n_units / pickle_s, seconds=pickle_s)
    return {
        "section": "process_handoff",
        "n_units": n_units,
        "unit_shape": list(unit_shape),
        "unit_mb": unit_mb,
        "shm": rows["shm"],
        "pickle": rows["pickle"],
        "speedup_shm_vs_pickle": pickle_s / shm_s,
    }


def handoff_end_to_end_section(n_wedges=8, repeats=1):
    """Context row: a *real* paper-scale encoder through both transports.

    Model compute dominates per unit on CPU, so this is not the gate —
    it shows the shm win is free even when amortized against real work,
    and proves bit-identity at paper scale.
    """

    from repro.core import BCAECompressor, build_model
    from repro.serve import ServiceConfig, StreamingCompressionService
    from repro.tpc import PAPER_GEOMETRY, generate_wedge_stream

    wedges = generate_wedge_stream(n_wedges, geometry=PAPER_GEOMETRY, seed=7)
    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0,
                        m=1, n=1, d=1)
    reference = b"".join(BCAECompressor(model).compress(w).payload
                         for w in wedges)

    rows = {}
    services = {}
    for transport in ("shm", "pickle"):
        service = StreamingCompressionService(model, ServiceConfig(
            max_batch=4, workers=1, backend="process", inflight=4,
            transport=transport, shm_slab_mb=32.0,
        ))
        payloads, _ = service.run(wedges)
        rows[transport] = {
            "bit_identical": b"".join(bytes(p.payload) for p in payloads)
            == reference,
        }
        services[transport] = service
    shm_s, pickle_s = _best_of_interleaved(
        [
            lambda: services["shm"].run(wedges, keep_payloads=False),
            lambda: services["pickle"].run(wedges, keep_payloads=False),
        ],
        repeats,
    )
    rows["shm"]["wedges_per_second"] = n_wedges / shm_s
    rows["pickle"]["wedges_per_second"] = n_wedges / pickle_s
    return {
        "section": "process_end_to_end_paper_scale",
        "n_wedges": n_wedges,
        "wedge_shape": list(wedges.shape[1:]),
        "shm": rows["shm"],
        "pickle": rows["pickle"],
        "speedup_shm_vs_pickle": pickle_s / shm_s,
    }


# ----------------------------------------------------------------------
# section 3: fault recovery — SIGKILLed workers vs a fault-free run
# ----------------------------------------------------------------------

def fault_recovery_section(n_units=_HANDOFF_UNITS, unit_shape=(4, 16, 96, 128),
                           kill_every=6, repeats=_REPEATS):
    """Cost of surviving worker crashes: kill every ``kill_every``-th unit.

    The probe service runs on the process backend over the shm slab ring
    with ``max_retries=2``; the injected units SIGKILL their worker on the
    first attempt only (``fail_attempts=1``), so every stream completes
    with correct checksums — the measured gap between the fault-free and
    degraded runs is pure recovery overhead: pool rebuild + ring
    quarantine + serial re-drive of the in-flight window + the retry.
    """

    from repro.serve import HandoffProbeService, ServiceConfig

    rng = np.random.default_rng(11)
    arrays = [
        rng.integers(0, 1024, size=unit_shape).astype(np.uint16)
        for _ in range(n_units)
    ]
    unit_mb = arrays[0].nbytes / (1 << 20)
    expected = [float(a.sum(dtype=np.float64)) for a in arrays]
    kill_seqs = list(range(kill_every - 1, n_units, kill_every))
    faults = {seq: "kill" for seq in kill_seqs}

    probe = HandoffProbeService(ServiceConfig(
        workers=1, backend="process", inflight=4,
        shm_slab_mb=max(16.0, unit_mb + 1),
        max_retries=2, backoff_base_s=0.0,
        degrade_after=len(kill_seqs) + 1,  # stay on the process ladder rung
    ))

    def healthy():
        return probe.run(arrays, keep_results=True)

    def degraded():
        items = HandoffProbeService.items(arrays, faults=faults,
                                          fail_attempts=1)
        return probe.run(items, keep_results=True)

    # Correctness under fire, once, before timing: every checksum right,
    # every crash charged to an injected unit, zero slabs leaked.
    results, stats = degraded()
    assert results == expected, "degraded run checksum mismatch"
    assert stats.faults.crashes >= len(kill_seqs)
    assert stats.faults.failures == 0
    assert probe.last_shm["leased_at_close"] == 0, "leaked slabs after crash"
    ring_rebuilds = probe.last_shm.get("ring_rebuilds", 0)

    healthy_s, degraded_s = _best_of_interleaved([healthy, degraded], repeats)
    return {
        "section": "fault_recovery",
        "n_units": n_units,
        "unit_mb": unit_mb,
        "kill_every": kill_every,
        "n_kills": len(kill_seqs),
        "ring_rebuilds": ring_rebuilds,
        "healthy": {"units_per_second": n_units / healthy_s,
                    "seconds": healthy_s},
        "degraded": {"units_per_second": n_units / degraded_s,
                     "seconds": degraded_s, "correct": True,
                     "leaked_slabs": 0},
        "throughput_ratio_degraded_vs_healthy": healthy_s / degraded_s,
    }


# ----------------------------------------------------------------------
# section 4: async ingestion gateway on a wall-clock-paced replay
# ----------------------------------------------------------------------

def async_section(n_wedges=30, budget_s=2e-3):
    from repro.core import BCAECompressor, build_model
    from repro.daq import DAQConfig, StreamingCompressionSim
    from repro.serve import ServiceConfig, StreamingCompressionService, async_replay_stream

    wedges = _stream(n=n_wedges)
    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0,
                        m=2, n=2, d=2)
    reference = b"".join(BCAECompressor(model).compress(w).payload
                         for w in wedges)
    sim = StreamingCompressionSim(
        DAQConfig(frame_rate_hz=1000.0, wedges_per_frame=3), seed=1
    )
    service = StreamingCompressionService(
        model, ServiceConfig(max_batch=16, max_delay_s=budget_s)
    )
    service.run(wedges[:16])  # warm
    payloads, stats = asyncio.run(
        service.run_async(async_replay_stream(sim.wedge_stream(wedges), speed=2.0))
    )
    from repro.perf import summarize_latencies

    latency = stats.batch_latency()
    return {
        "section": "async_gateway",
        "n_wedges": stats.n_wedges,
        "n_batches": stats.n_batches,
        "budget_s": budget_s,
        "bit_identical": b"".join(bytes(p.payload) for p in payloads) == reference,
        "wedges_per_second": stats.wedges_per_second,
        "wait_p99_s": summarize_latencies([r.wait_s for r in stats.records]).p99_s,
        "batch_latency_ms": {
            "mean": latency.mean_s * 1e3,
            "p50": latency.p50_s * 1e3,
            "p99": latency.p99_s * 1e3,
        },
    }


# ----------------------------------------------------------------------
# section 5: multi-producer sharded gateway — aggregate scaling
# ----------------------------------------------------------------------

def _run_gateway_once(model, wedges, producers, shards, reference):
    """One timed pass: N socket producers against an M-shard gateway.

    Returns aggregate wedges/s and whether every response frame was
    byte-identical to the inline per-wedge reference codes.
    """

    from repro.serve import (
        GatewayConfig,
        ServiceConfig,
        ServingGateway,
        StreamingCompressionService,
        read_wedge_frame,
        write_wedge_frame,
    )

    # Inline shards: each shard's work runs on its own pump thread, so
    # shard scaling maps onto cores through NumPy's GIL-releasing kernels
    # without paying process-pool forking inside the timed region.
    services = [
        StreamingCompressionService(
            model, ServiceConfig(max_batch=4, max_delay_s=1e-3)
        )
        for _ in range(shards)
    ]

    async def produce(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for w in wedges:
            write_wedge_frame(writer, w)
        await writer.drain()
        writer.write_eof()
        out = []
        while True:
            frame = await read_wedge_frame(reader)
            if frame is None:
                break
            out.append(frame.tobytes())
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return out

    async def run():
        gateway = ServingGateway(services, GatewayConfig())
        await gateway.start()
        t0 = time.perf_counter()
        outs = await asyncio.gather(
            *[produce(gateway.port) for _ in range(producers)]
        )
        dt = time.perf_counter() - t0
        await gateway.drain()
        await gateway.aclose()
        return outs, dt

    outs, dt = asyncio.run(run())
    ok = all(
        len(out) == len(wedges)
        and all(got == want for got, want in zip(out, reference))
        for out in outs
    )
    return producers * len(wedges) / dt, ok


def gateway_section(n_wedges=6, producers=8, shard_counts=(1, 4), repeats=1):
    """Aggregate throughput of the socket gateway at each shard count,
    with per-unit byte parity against the inline single-call path."""

    from repro.core import BCAECompressor, build_model

    wedges = _stream(n=n_wedges)
    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0,
                        m=2, n=2, d=2)
    compressor = BCAECompressor(model)
    reference = [compressor.compress(w[None]).codes()[0].tobytes()
                 for w in wedges]
    rows = []
    for shards in shard_counts:
        best_wps, ok = 0.0, True
        for _ in range(repeats):
            wps, parity = _run_gateway_once(
                model, wedges, producers, shards, reference
            )
            best_wps = max(best_wps, wps)
            ok = ok and parity
        rows.append({"shards": shards, "wedges_per_second": best_wps,
                     "bit_identical": ok})
    lo = min(rows, key=lambda r: r["shards"])
    hi = max(rows, key=lambda r: r["shards"])
    return {
        "section": "gateway_sharding",
        "producers": producers,
        "wedges_per_producer": n_wedges,
        "rows": rows,
        "speedup_max_vs_min_shards": (
            hi["wedges_per_second"] / lo["wedges_per_second"]
        ),
    }


# ----------------------------------------------------------------------
# reporting / gates / entry points
# ----------------------------------------------------------------------

def write_bench_json(sections, smoke, path=_BENCH_JSON, label=None):
    """Append one run to the perf-trajectory record future PRs diff
    against (last :data:`_MAX_RUNS` runs kept under ``"runs"``; a
    pre-trajectory single-run file is absorbed as the first entry)."""

    run = {"smoke": bool(smoke), "sections": sections}
    if label:
        run["label"] = label
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        doc = None
    if isinstance(doc, dict) and isinstance(doc.get("runs"), list):
        runs = doc["runs"]
    elif isinstance(doc, dict) and "sections" in doc:
        runs = [{"smoke": doc.get("smoke", False),
                 "sections": doc["sections"]}]
    else:
        runs = []
    runs = (runs + [run])[-_MAX_RUNS:]
    path.write_text(json.dumps(
        {"benchmark": "bench_serving", "runs": runs}, indent=2) + "\n")
    return path


def _service_lines(section):
    yield ""
    yield "Serving — micro-batched service vs serial single-wedge compress"
    yield (f"  stream: {section['n_wedges']} synthetic wedges "
           f"{tuple(section['wedge_shape'])}")
    for name, mkw in (("deep", "BCAE-2D(m=7,n=8,d=3)"),
                      ("default", "BCAE-2D(m=4,n=8,d=3)")):
        block = section[name]
        yield f"  {mkw}: serial {block['serial_wps']:7.1f} w/s"
        for row in block["rows"]:
            yield (f"    service {row['label']}: "
                   f"{row['wedges_per_second']:7.1f} w/s  "
                   f"speedup {row['speedup_vs_serial']:.2f}x  payloads "
                   f"{'identical' if row['bit_identical'] else 'MISMATCH'}")


def _handoff_lines(section):
    yield ""
    yield ("Process hand-off — shm slab ring vs pickle, paper-scale payloads "
           f"({section['unit_mb']:.1f} MiB x {section['n_units']} units)")
    for label in ("pickle", "shm"):
        row = section[label]
        yield (f"  {label:6s}: {row['units_per_second']:7.1f} units/s "
               f"({row['units_per_second'] * section['unit_mb']:7.0f} MiB/s)")
    yield f"  shm speedup: {section['speedup_shm_vs_pickle']:.2f}x"


def _end_to_end_lines(section):
    yield ""
    yield ("Process end-to-end — real paper-scale encoder through both "
           "transports (compute-dominated; context, not the gate)")
    for label in ("pickle", "shm"):
        row = section[label]
        yield (f"  {label:6s}: {row['wedges_per_second']:7.2f} w/s  payloads "
               f"{'identical' if row['bit_identical'] else 'MISMATCH'}")
    yield f"  shm speedup: {section['speedup_shm_vs_pickle']:.2f}x"


def _fault_lines(section):
    yield ""
    yield ("Fault recovery — SIGKILL every "
           f"{section['kill_every']}th unit's worker vs fault-free "
           f"({section['unit_mb']:.1f} MiB x {section['n_units']} units, "
           f"{section['n_kills']} kills, "
           f"{section['ring_rebuilds']} ring rebuild(s))")
    for label in ("healthy", "degraded"):
        row = section[label]
        yield (f"  {label:8s}: {row['units_per_second']:7.1f} units/s")
    yield (f"  degraded throughput: "
           f"{section['throughput_ratio_degraded_vs_healthy']:.2f}x "
           "fault-free; checksums correct, zero leaked slabs")


def _async_lines(section):
    yield ""
    yield (f"Async gateway — wall-clock replay under a "
           f"{section['budget_s'] * 1e3:.0f} ms monotonic budget")
    yield (f"  {section['n_wedges']} wedges in {section['n_batches']} batches, "
           f"{section['wedges_per_second']:7.1f} w/s, payloads "
           f"{'identical' if section['bit_identical'] else 'MISMATCH'}")
    lat = section["batch_latency_ms"]
    yield (f"  batch latency (wait+compute) mean/p50/p99: "
           f"{lat['mean']:.2f}/{lat['p50']:.2f}/{lat['p99']:.2f} ms; "
           f"accumulation p99 {section['wait_p99_s'] * 1e3:.2f} ms")


def _gateway_lines(section):
    yield ""
    yield (f"Sharded gateway — {section['producers']} socket producers x "
           f"{section['wedges_per_producer']} wedges, aggregate throughput")
    for row in section["rows"]:
        yield (f"  {row['shards']} shard(s): "
               f"{row['wedges_per_second']:7.1f} w/s aggregate  frames "
               f"{'identical' if row['bit_identical'] else 'MISMATCH'}")
    yield (f"  scaling {section['rows'][-1]['shards']} vs "
           f"{section['rows'][0]['shards']} shard(s): "
           f"{section['speedup_max_vs_min_shards']:.2f}x")


def test_serving_speedup_and_parity(benchmark):
    from conftest import report

    wedges = _stream()
    results = {}

    def measure_all():
        results["r"] = service_section(wedges)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _service_lines(section):
        report(line)

    # Acceptance: every configuration byte-identical to the serial path.
    for name in ("deep", "default"):
        assert all(r["bit_identical"] for r in section[name]["rows"]), name
    # Acceptance: >= 2x serial throughput on the deep-grid encoder.
    best = max(r["speedup_vs_serial"] for r in section["deep"]["rows"])
    assert best >= 2.0, f"service only {best:.2f}x serial"
    best_d = max(r["speedup_vs_serial"] for r in section["default"]["rows"])
    assert best_d >= 1.5


def test_handoff_shm_beats_pickle(benchmark):
    from conftest import report

    results = {}

    def measure_all():
        results["r"] = handoff_section()
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _handoff_lines(section):
        report(line)
    # Acceptance: shm hand-off >= 1.5x pickle on paper-scale payloads.
    assert section["speedup_shm_vs_pickle"] >= 1.5, (
        f"shm only {section['speedup_shm_vs_pickle']:.2f}x pickle"
    )


def test_fault_recovery_throughput(benchmark):
    from conftest import report

    results = {}

    def measure_all():
        results["r"] = fault_recovery_section(n_units=12, kill_every=4,
                                              repeats=1)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _fault_lines(section):
        report(line)
    # Correctness (checksums, crash attribution, zero leaked slabs) is
    # asserted inside the section; the tier-2 gate bounds the overhead.
    assert section["degraded"]["correct"]
    assert section["throughput_ratio_degraded_vs_healthy"] >= 0.3


def test_gateway_shard_scaling(benchmark):
    import os

    from conftest import report

    results = {}

    def measure_all():
        results["r"] = gateway_section(n_wedges=6, producers=8,
                                       shard_counts=(1, 4), repeats=1)
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    section = results["r"]
    for line in _gateway_lines(section):
        report(line)
    # Acceptance: every response frame byte-identical to the inline
    # per-wedge codes, under every shard count.
    assert all(r["bit_identical"] for r in section["rows"])
    # The scaling gate needs cores for the shards to land on; a 1-core
    # runner measures only scheduler noise, so gate where it can mean
    # something (mirrors the script's full-mode-only gate).
    if (os.cpu_count() or 1) >= 4:
        assert section["speedup_max_vs_min_shards"] >= 1.5, (
            f"gateway only {section['speedup_max_vs_min_shards']:.2f}x "
            "from 1 -> 4 shards"
        )


def test_serving_latency_budget(benchmark):
    """DAQ-timed replay: the batcher respects the accumulation budget."""

    from conftest import report

    from repro.core import build_model
    from repro.daq import DAQConfig, StreamingCompressionSim
    from repro.serve import ServiceConfig, StreamingCompressionService, replay_stream

    wedges = _stream(n=30)
    model = build_model("bcae_2d", wedge_spatial=wedges.shape[1:], seed=0, m=2, n=2, d=2)
    sim = StreamingCompressionSim(
        DAQConfig(frame_rate_hz=1000.0, wedges_per_frame=3), seed=1
    )
    service = StreamingCompressionService(
        model, ServiceConfig(max_batch=16, max_delay_s=2e-3)
    )

    def serve():
        return service.run(replay_stream(sim.wedge_stream(wedges)))

    _payloads, stats = benchmark.pedantic(serve, rounds=1, iterations=1)

    report()
    report("Serving — 1 kHz x 3 replay under a 2 ms accumulation budget")
    report(f"  {stats.row()}")
    report(f"  batch sizes: {[r.n_wedges for r in stats.records]}")
    assert stats.n_wedges == 30
    assert all(r.n_wedges <= 16 for r in stats.records)
    assert stats.n_batches >= 3  # the budget must split a 30-wedge stream


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small streams, relaxed speed gates (CI wiring check)")
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else _REPEATS
    service_gate = 1.1 if args.smoke else 2.0
    # Smoke checks the hand-off *wiring* (checksums + transport labels are
    # asserted inside handoff_section); a relative speed gate on one
    # repeat of six units would be CI noise, so it's full-mode only.
    handoff_gate = None if args.smoke else 1.5

    wedges = _stream(n=16 if args.smoke else _N_WEDGES)
    sections = []
    failed = False

    section = service_section(wedges, repeats=repeats)
    sections.append(section)
    for line in _service_lines(section):
        print(line)
    identical = all(
        r["bit_identical"] for n in ("deep", "default") for r in section[n]["rows"]
    )
    best = max(r["speedup_vs_serial"] for r in section["deep"]["rows"])
    if not identical:
        print("FAIL: service payload mismatch")
        failed = True
    elif best < service_gate:
        print(f"FAIL: service {best:.2f}x < gate {service_gate}x")
        failed = True
    else:
        print(f"OK: service {best:.2f}x serial (gate {service_gate}x)")

    section = handoff_section(
        n_units=6 if args.smoke else _HANDOFF_UNITS, repeats=repeats
    )
    sections.append(section)
    for line in _handoff_lines(section):
        print(line)
    speedup = section["speedup_shm_vs_pickle"]
    if handoff_gate is None:
        print(f"OK: shm hand-off wiring verified ({speedup:.2f}x pickle; "
              "speed gate is full-mode only)")
    elif speedup < handoff_gate:
        print(f"FAIL: shm hand-off {speedup:.2f}x < gate {handoff_gate}x")
        failed = True
    else:
        print(f"OK: shm hand-off {speedup:.2f}x pickle (gate {handoff_gate}x)")

    if not args.smoke:
        section = handoff_end_to_end_section()
        sections.append(section)
        for line in _end_to_end_lines(section):
            print(line)
        if not all(section[t]["bit_identical"] for t in ("shm", "pickle")):
            print("FAIL: end-to-end paper-scale payload mismatch")
            failed = True

    section = fault_recovery_section(
        n_units=8 if args.smoke else _HANDOFF_UNITS,
        kill_every=4 if args.smoke else 6,
        repeats=repeats,
    )
    sections.append(section)
    for line in _fault_lines(section):
        print(line)
    ratio = section["throughput_ratio_degraded_vs_healthy"]
    # Correctness (checksums, crash attribution, zero leaked slabs) is
    # asserted inside the section; smoke checks the wiring only — a
    # relative gate on one repeat of eight units would be CI noise.
    fault_gate = None if args.smoke else 0.5
    if fault_gate is None:
        print(f"OK: fault recovery wiring verified ({ratio:.2f}x fault-free; "
              "speed gate is full-mode only)")
    elif ratio < fault_gate:
        print(f"FAIL: degraded only {ratio:.2f}x fault-free "
              f"< gate {fault_gate}x")
        failed = True
    else:
        print(f"OK: degraded {ratio:.2f}x fault-free (gate {fault_gate}x)")

    section = async_section(n_wedges=12 if args.smoke else 30)
    sections.append(section)
    for line in _async_lines(section):
        print(line)
    if not section["bit_identical"]:
        print("FAIL: async gateway payload mismatch")
        failed = True
    else:
        print("OK: async gateway byte-identical under the wall-clock budget")

    # Multi-producer sharded gateway: parity always, scaling full-mode
    # only (shards need cores to land on; a busy 1-core runner measures
    # scheduler noise, not the router).
    gateway_gate = None if args.smoke else 1.5
    section = gateway_section(
        n_wedges=4 if args.smoke else 6,
        producers=4 if args.smoke else 8,
        shard_counts=(1, 2) if args.smoke else (1, 4),
        repeats=repeats,
    )
    sections.append(section)
    for line in _gateway_lines(section):
        print(line)
    scaling = section["speedup_max_vs_min_shards"]
    if not all(r["bit_identical"] for r in section["rows"]):
        print("FAIL: gateway response frames mismatch inline codes")
        failed = True
    elif gateway_gate is None:
        print(f"OK: sharded gateway wiring verified ({scaling:.2f}x "
              "aggregate 1 -> 2 shards; scaling gate is full-mode only)")
    elif scaling < gateway_gate:
        print(f"FAIL: gateway scaling {scaling:.2f}x < gate {gateway_gate}x")
        failed = True
    else:
        print(f"OK: gateway {scaling:.2f}x aggregate 1 -> 4 shards "
              f"(gate {gateway_gate}x)")

    path = write_bench_json(sections, args.smoke)
    print(f"\nwrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
