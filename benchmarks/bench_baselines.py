"""§1 comparison — BCAE vs learning-free compressors on sparse TPC data.

Paper claim: "a specially designed neural network-based model (BCAE) can
outperform [SZ, ZFP, MGARD] in both compression rate and reconstruction
accuracy" — the sparsity (~10.8% occupancy) defeats generic compressors.

This bench sweeps each codec family over its rate/error-bound knob on the
same synthetic wedges a trained BCAE-2D compresses at ratio 31.125 (paper
grid) / 8.0 (tiny grid, d=2 scale-down), and reports the rate–distortion
frontier.
"""

import numpy as np

from conftest import report

from repro.baselines import DecimationCodec, MGARDLikeCodec, SZLikeCodec, ZFPLikeCodec, evaluate_codec
from repro.core import BCAECompressor
from repro.metrics import mae as mae_metric
from repro.tpc import log_transform


def test_baselines_rate_distortion(benchmark, trained_models, bench_datasets):
    _train, test = bench_datasets
    wedges = log_transform(test.wedges[:4])

    codecs = [
        SZLikeCodec(0.25),
        SZLikeCodec(0.5),
        SZLikeCodec(1.0),
        SZLikeCodec(2.0),
        ZFPLikeCodec(1),
        ZFPLikeCodec(2),
        ZFPLikeCodec(4),
        MGARDLikeCodec(0.25),
        MGARDLikeCodec(1.0),
        MGARDLikeCodec(2.0),
        DecimationCodec((1, 2, 2)),
        DecimationCodec((2, 2, 2)),
    ]

    def sweep():
        return [evaluate_codec(c, wedges) for c in codecs]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The trained neural reference on the same wedges.
    trainer = trained_models["bcae_2d"]
    comp = BCAECompressor(trainer.model, half=True)
    recon, compressed = comp.roundtrip(test.wedges[:4])
    bcae_mae = mae_metric(recon, wedges)
    bcae_ratio = (2.0 * wedges.size) / compressed.nbytes

    report()
    report("§1 claim — learning-free codecs vs BCAE on sparse TPC wedges")
    report(f"  occupancy: {(wedges > 0).mean():.4f}")
    report(f"  {'codec':22s} {'ratio':>8s} {'MAE':>8s} {'PSNR':>8s} {'max err':>8s}")
    for r in results:
        report(f"  {r.name:22s} {r.ratio:8.2f} {r.mae:8.4f} {r.psnr:8.2f} {r.max_error:8.3f}")
    report(
        f"  {'bcae_2d (trained)':22s} {bcae_ratio:8.2f} {bcae_mae:8.4f} "
        f"{'':>8s} {'n/a':>8s}"
    )
    report("  paper: on the full grid BCAE reaches ratio 31.125 at MAE 0.112-0.152;")
    report("  error-bounded codecs stall at single-digit ratios for comparable error,")
    report("  fixed-rate block codecs ring catastrophically on sparse data.")
    report("  (our tiny-budget BCAE row is under-trained; the asserted claim uses")
    report("   the paper's operating point: no codec reaches ratio 31 at MAE < 0.5)")

    # Mechanical form of the §1 claim at the PAPER's operating point: no
    # learning-free codec reaches the trained BCAE's ratio (31.125) while
    # keeping the error in the BCAE's regime (MAE well below 0.5).
    for r in results:
        assert not (r.ratio >= 31.125 and r.mae <= 0.5), r.name

    # Family invariants while we are here.
    for r in results:
        if r.name.startswith("sz_like") or r.name.startswith("mgard"):
            eb = float(r.name.split("eb=")[1].split(")")[0].split(",")[0])
            assert r.max_error <= eb * (1 + 1e-4), r.name
