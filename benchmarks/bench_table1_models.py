"""Table 1 — reconstruction metrics, encoder size and throughput per model.

Paper (half precision, RTX A6000):

    model     MAE    PSNR    precision recall  encoder   throughput
    BCAE-2D   0.152  11.726  0.906     0.907   169.0k    ~6.9k
    BCAE++    0.112  14.325  0.934     0.936   226.2k    ~2.6k
    BCAE-HT   0.138  12.376  0.916     0.915     9.8k    ~4.6k
    BCAE      0.198   9.923  0.878     0.861   201.7k    ~2.4k

We train each variant briefly on synthetic tiny wedges (absolute metric
values therefore differ), count the paper-exact encoder parameters, measure
CPU encoder throughput of this implementation, and model the A6000
throughput with the roofline.  §3.1 ratios (31.125 / 27.041) are asserted
exactly.
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from conftest import report

from repro.core import BCAECompressor, build_model, supports_fast_encode
from repro.perf import estimate_throughput, measure_compress_throughput, trace_encoder

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_models.json"
#: Trajectory depth: runs kept in BENCH_models.json before the oldest drop.
_MAX_RUNS = 20

_PAPER = {
    "bcae_2d": dict(mae=0.152, psnr=11.726, precision=0.906, recall=0.907, size=169.0, tput=6900),
    "bcae_pp": dict(mae=0.112, psnr=14.325, precision=0.934, recall=0.936, size=226.2, tput=2600),
    "bcae_ht": dict(mae=0.138, psnr=12.376, precision=0.916, recall=0.915, size=9.8, tput=4600),
    "bcae": dict(mae=0.198, psnr=9.923, precision=0.878, recall=0.861, size=201.7, tput=2400),
}


@pytest.fixture(scope="module")
def table1_rows(trained_models, bench_datasets):
    _train, test = bench_datasets
    rows = {}
    for name, trainer in trained_models.items():
        metrics = trainer.evaluate(test, half=True)
        paper_model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)
        rows[name] = {
            "metrics": metrics,
            "encoder_size": paper_model.encoder_parameters(),
            "paper_model": paper_model,
        }
    return rows


def test_table1_metrics_and_sizes(benchmark, table1_rows, bench_datasets):
    _train, _test = bench_datasets

    # Benchmark the deployable operation: paper-scale fp16 encoding (BCAE-2D).
    from repro import nn
    from repro.nn import Tensor

    model2d = table1_rows["bcae_2d"]["paper_model"]
    x = Tensor(np.zeros((1, 16, 192, 256), dtype=np.float32))

    def encode():
        with nn.no_grad(), nn.amp.autocast(True):
            return model2d.encode(x)

    benchmark(encode)

    report()
    report("Table 1 — model comparison (half precision)")
    report("  [metrics: this repo = tiny synthetic wedges + short training;")
    report("   encoder size: paper-exact architectures; throughput: A6000 roofline model]")
    header = (
        f"  {'model':9s} {'MAE':>7s} {'PSNR':>7s} {'prec':>6s} {'recall':>6s} "
        f"{'enc size':>9s} {'GPU-model':>10s} | paper: MAE/PSNR/prec/rec/size/tput"
    )
    report(header)
    for name, row in table1_rows.items():
        m = row["metrics"]
        p = _PAPER[name]
        trace = trace_encoder(row["paper_model"], (16, 192, 256) if name != "bcae" else (16, 192, 249))
        tput = estimate_throughput(trace, 64, half=True)
        report(
            f"  {name:9s} {m.mae:7.3f} {m.psnr:7.2f} {m.precision:6.3f} {m.recall:6.3f} "
            f"{row['encoder_size'] / 1e3:8.1f}k {tput:9.0f}/s | "
            f"{p['mae']:.3f}/{p['psnr']:.2f}/{p['precision']:.3f}/{p['recall']:.3f}/"
            f"{p['size']}k/~{p['tput']}"
        )

    # Structural assertions: the orderings every Table-1 conclusion rests on.
    sizes = {n: r["encoder_size"] for n, r in table1_rows.items()}
    assert sizes["bcae_pp"] > sizes["bcae"] > sizes["bcae_2d"] > sizes["bcae_ht"]
    for name, row in table1_rows.items():
        assert np.isfinite(row["metrics"].mae)


def test_table1_compression_ratios(benchmark, table1_rows):
    """§3.1: 31.125 for the new variants, 27.041 for the original BCAE."""

    def ratios():
        out = {}
        for name, row in table1_rows.items():
            comp = BCAECompressor(row["paper_model"])
            out[name] = comp.compression_ratio((16, 192, 249))
        return out

    values = benchmark.pedantic(ratios, rounds=1, iterations=1)
    report()
    report("§3.1 — compression ratios (input and code as fp16)")
    for name, ratio in values.items():
        paper = 27.041 if name == "bcae" else 31.125
        report(f"  {name:9s} ratio = {ratio:.3f}   (paper: {paper})")
    assert values["bcae_2d"] == pytest.approx(31.125)
    assert values["bcae_pp"] == pytest.approx(31.125)
    assert values["bcae_ht"] == pytest.approx(31.125)
    assert values["bcae"] == pytest.approx(27.041, abs=1e-3)


def measure_cpu_throughput(models, wedge_shape=(16, 192, 249), repeats=1, warmup=1):
    """Wedges/s of ``compress_into`` per model — like-for-like engines.

    Since the BatchNorm fold/affine stages landed, **all four** Table-1
    models route through the compiled stage-plan engine (the original
    BCAE's eval-mode BatchNorm included) — the throughput ordering compares
    one engine across architectures, exactly what Table 1 claims.  Returns
    per-model rows with the backend recorded; any ``module_graph`` row is a
    regression.
    """

    rows = {}
    for name, model in models.items():
        model.eval()  # BatchNorm from running stats — the compiled graph
        r = measure_compress_throughput(
            model, wedge_shape, batch_size=1, half=True,
            repeats=repeats, warmup=warmup,
        )
        rows[name] = {
            "wedges_per_second": r.wedges_per_second,
            "wedge_shape": list(wedge_shape),
            "backend": "fast" if supports_fast_encode(model) else "module_graph",
            "encoder_parameters": model.encoder_parameters(),
        }
    return rows


def write_bench_json(rows, smoke, path=_BENCH_JSON, label=None):
    """Append one run to the perf-trajectory record future PRs diff
    against (last :data:`_MAX_RUNS` runs kept under ``"runs"``; a
    pre-trajectory single-run file is absorbed as the first entry)."""

    run = {"smoke": bool(smoke), "models": rows}
    if label:
        run["label"] = label
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        doc = None
    if isinstance(doc, dict) and isinstance(doc.get("runs"), list):
        runs = doc["runs"]
    elif isinstance(doc, dict) and "models" in doc:
        runs = [{"smoke": doc.get("smoke", False), "models": doc["models"]}]
    else:
        runs = []
    runs = (runs + [run])[-_MAX_RUNS:]
    path.write_text(json.dumps(
        {"benchmark": "bench_table1_models", "runs": runs}, indent=2) + "\n")
    return path


def test_table1_cpu_throughput(benchmark, table1_rows):
    """Measured wedges/s of this implementation (batch 1, fp16 serving path)."""

    results = {}

    def measure_all():
        models = {name: row["paper_model"] for name, row in table1_rows.items()}
        results.update(measure_cpu_throughput(models))
        return results

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    report()
    report("Table 1 (cont.) — measured CPU throughput, compiled serving path")
    for name, row in results.items():
        report(f"  {name:9s} {row['wedges_per_second']:8.2f} wedges/s "
               f"({row['backend']:12s})   [paper GPU: ~{_PAPER[name]['tput']}/s]")
    write_bench_json(results, smoke=False)
    # Every Table-1 model must actually be on the compiled engine — the
    # original BCAE included (BatchNorm fold/affine stages).
    for name in ("bcae_2d", "bcae_pp", "bcae_ht", "bcae"):
        assert results[name]["backend"] == "fast", f"{name} fell off the fast path"
    # The paper's headline: the 2D encoder is the fastest of the family.
    assert (results["bcae_2d"]["wedges_per_second"]
            > results["bcae_pp"]["wedges_per_second"])


def main(argv=None) -> int:
    """Script mode: the like-for-like throughput table without the training
    fixtures (metrics need pytest; throughput does not)."""

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small geometry, single repeat (CI wiring check)")
    args = parser.parse_args(argv)

    wedge_shape = (16, 48, 62) if args.smoke else (16, 192, 249)
    models = {
        name: build_model(name, wedge_spatial=wedge_shape, seed=0)
        for name in ("bcae_2d", "bcae_pp", "bcae_ht", "bcae")
    }
    rows = measure_cpu_throughput(models, wedge_shape=wedge_shape)
    print("Table 1 — measured CPU throughput, compiled serving path")
    for name, row in rows.items():
        print(f"  {name:9s} {row['wedges_per_second']:8.2f} wedges/s "
              f"({row['backend']})")
    path = write_bench_json(rows, args.smoke)
    print(f"wrote {path}")
    for name in ("bcae_2d", "bcae_pp", "bcae_ht", "bcae"):
        if rows[name]["backend"] != "fast":
            print(f"FAIL: {name} fell off the fast path")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
