"""Ablations of the paper's design choices (DESIGN.md §2 calls these out).

Four targeted experiments, each isolating one decision the paper makes:

1. **regression output transform** (§2.2): ``T(x) = 6 + 3eˣ`` vs identity
   on a 3D model — T hard-codes the zero-suppression gap into the head;
2. **focal loss focusing** (§2.2): γ = 2 vs γ = 0 (plain BCE) on ~10%
   occupancy data;
3. **dynamic loss balancing** (§2.5): the c₀ = 2000 recurrence vs a fixed
   coefficient;
4. **horizontal padding** (§2.3): 249→256 padding raises the compression
   ratio from 27.041 to 31.125 *for free* (structural, asserted exactly).

Budgets are tiny; the bench reports directions, not paper-grade numbers.
"""

import numpy as np
import pytest

from conftest import bench_epochs, report

from repro import nn
from repro.core import BCAECompressor, build_model
from repro.nn import Tensor
from repro.tpc import pad_horizontal, padded_length
from repro.train import TrainConfig, Trainer


def _train_variant(train, build, epochs, gamma=2.0, fixed_coefficient=None):
    """Train a model with optional loss modifications; returns (trainer, metrics)."""

    model = build()
    trainer = Trainer(
        model, TrainConfig(epochs=epochs, batch_size=4, warmup_epochs=epochs,
                           focal_gamma=gamma, seed=0)
    )
    if fixed_coefficient is not None:
        trainer.balancer.coefficient = fixed_coefficient
        trainer.balancer.update = lambda s, r: fixed_coefficient  # freeze
    trainer.fit(train)
    return trainer


def test_ablation_output_transform(benchmark, bench_datasets):
    """§2.2: with T, every nonzero output clears the zero-suppression edge."""

    train, test = bench_datasets
    epochs = bench_epochs(4)

    def run():
        out = {}
        for label, activation in (("T(x)=6+3e^x", True), ("identity", False)):
            nn.init.seed(5)
            model = build_model("bcae_ht", wedge_spatial=train.geometry.wedge_shape)
            if not activation:
                model.reg_decoder.output_activation = nn.Identity()
            trainer = Trainer(
                model, TrainConfig(epochs=epochs, batch_size=4, warmup_epochs=epochs, seed=0)
            )
            trainer.fit(train)
            x, _ = test.batch(np.arange(4))
            with nn.no_grad():
                reg = model(Tensor(x)).reg.data
            out[label] = (trainer.evaluate(test, max_batches=2), reg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report()
    report("Ablation 1 — regression output transform (paper §2.2)")
    for label, (metrics, reg) in results.items():
        frac_below_edge = float((reg < 6.0).mean())
        report(f"  reg head {label:12s}: MAE={metrics.mae:.4f} "
               f"fraction of raw outputs below edge 6.0: {frac_below_edge:.3f}")
    _m, reg_t = results["T(x)=6+3e^x"]
    assert float(reg_t.min()) >= 6.0, "T must floor outputs at the edge"


def test_ablation_focal_gamma(benchmark, bench_datasets):
    """§2.2: γ=2 focal loss vs plain BCE (γ=0) on imbalanced voxels."""

    train, test = bench_datasets
    epochs = bench_epochs(4)

    def run():
        out = {}
        for gamma in (0.0, 2.0):
            nn.init.seed(5)
            trainer = _train_variant(
                train,
                lambda: build_model("bcae_ht", wedge_spatial=train.geometry.wedge_shape),
                epochs,
                gamma=gamma,
            )
            out[gamma] = trainer.evaluate(test, max_batches=2)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report()
    report("Ablation 2 — focal focusing parameter (paper §2.2, γ=2)")
    for gamma, metrics in results.items():
        report(f"  γ={gamma:g}: MAE={metrics.mae:.4f} precision={metrics.precision:.4f} "
               f"recall={metrics.recall:.4f}")
    for metrics in results.values():
        assert np.isfinite(metrics.mae)


def test_ablation_loss_balancer(benchmark, bench_datasets):
    """§2.5: the c₀=2000 dynamic recurrence vs freezing the coefficient."""

    train, test = bench_datasets
    epochs = bench_epochs(4)

    def run():
        out = {}
        for label, fixed in (("dynamic(c0=2000)", None), ("fixed(c=1)", 1.0)):
            nn.init.seed(5)
            trainer = _train_variant(
                train,
                lambda: build_model("bcae_ht", wedge_spatial=train.geometry.wedge_shape),
                epochs,
                fixed_coefficient=fixed,
            )
            out[label] = (trainer.evaluate(test, max_batches=2),
                          trainer.balancer.coefficient)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report()
    report("Ablation 3 — dynamic loss balancing (paper §2.5)")
    for label, (metrics, coeff) in results.items():
        report(f"  {label:18s}: MAE={metrics.mae:.4f} recall={metrics.recall:.4f} "
               f"final c={coeff:.2f}")
    dyn = results["dynamic(c0=2000)"][1]
    assert dyn < 2000.0, "the recurrence must decay from c0"


def test_ablation_horizontal_padding(benchmark):
    """§2.3: padding 249→256 lifts the ratio 27.041 → 31.125 structurally."""

    def ratios():
        legacy = build_model("bcae", wedge_spatial=(16, 192, 249), seed=0)
        padded = build_model("bcae_pp", wedge_spatial=(16, 192, 249), seed=0)
        return (
            BCAECompressor(legacy).compression_ratio((16, 192, 249)),
            BCAECompressor(padded).compression_ratio((16, 192, 249)),
        )

    legacy_ratio, padded_ratio = benchmark.pedantic(ratios, rounds=1, iterations=1)
    report()
    report("Ablation 4 — horizontal padding (paper §2.3)")
    report(f"  unpadded (249, legacy stages): ratio {legacy_ratio:.3f} (paper 27.041)")
    report(f"  padded   (256, uniform k4s2p1): ratio {padded_ratio:.3f} (paper 31.125)")
    report(f"  improvement: {100 * (padded_ratio / legacy_ratio - 1):.1f}% (paper: 15%)")
    assert padded_ratio == pytest.approx(31.125)
    assert legacy_ratio == pytest.approx(27.041, abs=1e-3)
    assert padded_ratio / legacy_ratio == pytest.approx(1.151, abs=0.01)
