"""Figure 6 — throughput vs batch size, precision modes, and the m-ladder.

Panels A–C: wedges/s vs batch size (1–96) in half and full precision on an
RTX A6000.  BCAE-2D and BCAE++ gain 76–79% from fp16; BCAE-HT gains almost
nothing.  Panel D diagnoses why: BCAE-HT's small-channel convolutions never
engage Tensor Cores.  Panel E: BCAE-2D(m, n, d=3) throughput for m = 3..7
with encoder sizes 132.9k → 277.4k.

This bench regenerates all panels with the calibrated A6000 roofline model
(fed by exact per-layer FLOP traces of our architectures) and additionally
measures this CPU implementation's throughput at batch 1.
"""

import numpy as np

from conftest import full_scale, report

from repro.core import BCAE2D, build_model
from repro.perf import (
    estimate_throughput,
    measure_encoder_throughput,
    speedup_half,
    throughput_curve,
    trace_encoder,
)

_BATCHES = (1, 2, 4, 8, 16, 32, 48, 64, 80, 96)


def _curve_row(curve: dict[int, float]) -> str:
    return " ".join(f"{curve[b]:7.0f}" for b in _BATCHES)


def test_fig6_abc_batch_curves(benchmark, encoder_traces):
    def model_curves():
        out = {}
        for name, trace in encoder_traces.items():
            out[name] = (
                throughput_curve(trace, _BATCHES, half=True),
                throughput_curve(trace, _BATCHES, half=False),
            )
        return out

    curves = benchmark(model_curves)

    report()
    report("Figure 6A–C — modeled A6000 throughput [wedges/s] vs batch size")
    report(f"  batch:      " + " ".join(f"{b:7d}" for b in _BATCHES))
    paper_plateau = {"bcae_2d": 6900, "bcae_pp": 2600, "bcae_ht": 4600}
    for name, (half, full) in curves.items():
        report(f"  {name:9s} half {_curve_row(half)}")
        report(f"  {name:9s} full {_curve_row(full)}")
        sp = half[64] / full[64]
        report(
            f"  {name:9s} fp16 speedup @64 = {sp:.2f}x "
            f"(paper: ~1.76-1.79x for 2D/++, ~1x for HT; plateau ~{paper_plateau[name]}/s)"
        )

    # Figure-6 structure: saturating curves; fp16 helps 2D/++ but not HT.
    for name, (half, _full) in curves.items():
        assert half[96] > half[1], f"{name}: throughput must grow with batch"
        early = half[4] / half[1]
        late = half[96] / half[48]
        assert early > late, f"{name}: curve must saturate"
    assert curves["bcae_2d"][0][64] / curves["bcae_2d"][1][64] > 1.5
    assert curves["bcae_pp"][0][64] / curves["bcae_pp"][1][64] > 1.4
    assert curves["bcae_ht"][0][64] / curves["bcae_ht"][1][64] < 1.15


def test_fig6_d_tensor_core_diagnosis(benchmark, encoder_traces):
    """Panel D: BCAE-HT's kernels lack Tensor-Core activity."""

    def tc_fractions():
        return {n: t.tc_fraction() for n, t in encoder_traces.items()}

    fracs = benchmark.pedantic(tc_fractions, rounds=1, iterations=1)

    report()
    report("Figure 6D — Tensor-Core-eligible fraction of encoder FLOPs")
    for name, frac in fracs.items():
        report(f"  {name:9s} {100 * frac:6.1f}% TC-eligible "
               f"({'engages' if frac > 0.5 else 'does NOT engage'} Tensor Cores)")
    ht = encoder_traces["bcae_ht"]
    report("  BCAE-HT per-layer channel structure (the Fig. 6D diagnosis):")
    for layer in ht.layers:
        if layer.kind.startswith("Conv"):
            report(
                f"    {layer.name:40s} {layer.kind:8s} util={layer.channel_utilization:6.3f} "
                f"tc={'yes' if layer.tc_eligible else 'no '} flops={layer.flops / 1e6:8.1f}M"
            )
    assert fracs["bcae_ht"] < 0.10
    assert fracs["bcae_2d"] > 0.95


def test_fig6_e_encoder_depth_ladder(benchmark, bench_datasets):
    """Panel E: BCAE-2D(m, n, d=3) throughput and size for m = 3..7."""

    paper_sizes = {3: 132.9, 4: 169.0, 5: 205.2, 6: 241.3, 7: 277.4}

    def ladder():
        rows = {}
        for m in (3, 4, 5, 6, 7):
            model = BCAE2D(m=m, n=3, d=3)
            trace = trace_encoder(model, (16, 192, 256), name=f"m={m}")
            rows[m] = (
                model.encoder_parameters(),
                throughput_curve(trace, _BATCHES, half=True),
            )
        return rows

    rows = benchmark.pedantic(ladder, rounds=1, iterations=1)

    report()
    report("Figure 6E — BCAE-2D(m, n, d=3) modeled half-precision throughput")
    report(f"  batch:    " + " ".join(f"{b:7d}" for b in _BATCHES))
    for m, (size, curve) in rows.items():
        report(f"  m={m} size={size / 1e3:6.1f}k (paper {paper_sizes[m]}k) {_curve_row(curve)}")
    report("  paper shape: deeper encoders are uniformly slower; all curves saturate")

    plateaus = {m: curve[96] for m, (_s, curve) in rows.items()}
    for a, b in zip(sorted(plateaus), sorted(plateaus)[1:]):
        assert plateaus[a] > plateaus[b], "deeper encoder must be slower"


def test_fig6_measured_cpu_throughput(benchmark):
    """Ground truth for this implementation: measured CPU wedges/s."""

    shape = (16, 192, 256) if full_scale() else (16, 48, 64)
    models = {
        name: build_model(name, wedge_spatial=(shape[0], shape[1], shape[2] - 2), seed=0)
        for name in ("bcae_2d", "bcae_pp", "bcae_ht")
    }

    results = {}

    def measure():
        for name, model in models.items():
            half = measure_encoder_throughput(model, shape, 1, half=True, repeats=1, warmup=0)
            full = measure_encoder_throughput(model, shape, 1, half=False, repeats=1, warmup=0)
            results[name] = (half.wedges_per_second, full.wedges_per_second)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    report()
    report(f"Figure 6 (measured) — CPU throughput at wedge shape {shape}, batch 1")
    for name, (h, f) in results.items():
        report(f"  {name:9s} half={h:8.2f} w/s  full={f:8.2f} w/s "
               f"(fp16 emulation adds casts on CPU; the GPU gain is modeled above)")
    assert results["bcae_2d"][0] > results["bcae_pp"][0], "2D must beat 3D on CPU too"
