"""Benchmark fixtures and the paper-vs-measured reporting plumbing.

Every benchmark module regenerates one table or figure of the paper (see
DESIGN.md §4).  Reported comparison lines are accumulated through
:func:`report` and printed in the terminal summary so they survive pytest's
output capture (they appear in ``bench_output.txt``).

Scale: statistical benches train on the ``TINY`` geometry (wedges
``(16, 24, 32)``) for a handful of epochs — enough for the paper's
*qualitative* shapes.  Set ``REPRO_BENCH_EPOCHS`` to raise the budget, or
``REPRO_FULL=1`` for paper-sized wedges in the throughput measurements.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

_REPORT_LINES: list[str] = []


def report(line: str = "") -> None:
    """Queue a line for the end-of-run summary (survives output capture)."""

    _REPORT_LINES.append(line)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_LINES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("PAPER-VS-MEASURED REPORT (see EXPERIMENTS.md for discussion)")
    terminalreporter.write_line("=" * 78)
    for line in _REPORT_LINES:
        terminalreporter.write_line(line)


def bench_epochs(default: int) -> int:
    return int(os.environ.get("REPRO_BENCH_EPOCHS", default))


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


# ----------------------------------------------------------------------
# shared data / model fixtures
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def bench_datasets():
    """(train, test) wedge datasets for the statistical benches."""

    from repro.tpc import TINY_GEOMETRY, generate_wedge_dataset

    return generate_wedge_dataset(2, geometry=TINY_GEOMETRY, seed=42)


@pytest.fixture(scope="session")
def trained_models(bench_datasets):
    """All four BCAE variants trained briefly on the shared dataset.

    Returns ``{name: Trainer}`` — the trainer keeps the model, history and
    evaluation entry points.
    """

    from repro.core import build_model
    from repro.train import TrainConfig, Trainer

    train, _test = bench_datasets
    budgets = {
        "bcae_2d": (bench_epochs(12), dict(m=4, n=8, d=3)),
        "bcae_pp": (bench_epochs(6), {}),
        "bcae_ht": (bench_epochs(12), {}),
        "bcae": (bench_epochs(6), {}),
    }
    out = {}
    for name, (epochs, kwargs) in budgets.items():
        model = build_model(
            name, wedge_spatial=train.geometry.wedge_shape, seed=0, **kwargs
        )
        trainer = Trainer(
            model,
            TrainConfig(epochs=epochs, batch_size=4, warmup_epochs=epochs, seed=0),
        )
        trainer.fit(train)
        out[name] = trainer
    return out


@pytest.fixture(scope="session")
def encoder_traces():
    """Paper-scale FLOP traces of the three fast variants (for the roofline)."""

    from repro.core import build_model
    from repro.perf import trace_encoder

    traces = {}
    for name in ("bcae_2d", "bcae_pp", "bcae_ht"):
        model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)
        traces[name] = trace_encoder(model, (16, 192, 256), name=name)
    return traces
