"""§2.1 criterion — physics impact of compression on cluster centroids.

The paper's stated requirement for a usable TPC compressor: "it is
important to preserve the relative ADC ratio between the sensors" because
trajectory positions are interpolated from neighbouring ADC values.  This
bench closes that loop: it clusters the original and decompressed wedges
(``repro.tpc.reco``), matches clusters, and reports the reconstruction-level
figures of merit — cluster efficiency, fake rate, and centroid shift —
for the trained BCAE variants and for the error-bounded SZ-like baseline
at two bounds.

A compressor can have decent voxel MAE and still be useless if it smears
centroids; conversely the SZ-like codec at a tight bound shows the target
regime: efficiency ≈ 1, shift ≪ 1 bin.
"""

import numpy as np

from conftest import report

from repro.baselines import SZLikeCodec
from repro.core import BCAECompressor
from repro.tpc import centroid_residuals, log_transform


def test_physics_cluster_residuals(benchmark, trained_models, bench_datasets):
    _train, test = bench_datasets
    raw = test.wedges[:2]
    truth = log_transform(raw)

    def run():
        rows = {}
        for name, trainer in trained_models.items():
            comp = BCAECompressor(trainer.model, half=True)
            recon, _c = comp.roundtrip(raw)
            rows[name] = centroid_residuals(truth[0], recon[0], min_size=2)
        for eb in (0.25, 1.0):
            codec = SZLikeCodec(eb)
            recon = codec.decompress(codec.compress(truth))
            rows[codec.name] = centroid_residuals(truth[0], recon[0], min_size=2)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report()
    report("§2.1 physics impact — cluster-level comparison on one test wedge")
    report("  (efficiency = found clusters; shift = ADC-weighted centroid error)")
    for name, summary in rows.items():
        report(f"  {name:18s} {summary.row()}")
    report("  target regime (shown by sz_like at eb=0.25): eff≈1, shift ≪ 1 bin;")
    report("  a fully trained BCAE reaches it at 3.7x the compression ratio (paper)")

    # The error-bounded baseline at a tight bound must sit in the target
    # regime — validates the whole reco chain end to end.
    tight = rows["sz_like(eb=0.25)"]
    assert tight.efficiency > 0.95
    assert tight.mean_shift < 0.2
    # Looser bounds must not *improve* the centroids.
    loose = rows["sz_like(eb=1)"]
    assert loose.mean_shift >= tight.mean_shift - 1e-9
