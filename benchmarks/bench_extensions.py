"""Paper §4 future-work extensions: pruning, int8 quantization, DAQ sizing.

The conclusion lists "network pruning, quantization, and sparse CNN
techniques" as the next throughput levers.  This bench quantifies them with
the same substrates used for the main results:

* magnitude pruning of the BCAE-2D encoder → ideal-sparse FLOP reduction
  and the roofline throughput it would unlock;
* post-training W8A8 quantization → emulated accuracy delta plus the
  modeled INT8-Tensor-Core throughput (309.7 TOPS on the A6000 = 2× fp16);
* the streaming-DAQ sizing argument (§1): GPUs required to sustain the
  sPHENIX 77 kHz × 24-wedge stream per model, before/after the extensions.
"""

import dataclasses

import numpy as np

from conftest import report

from repro import nn
from repro.core import build_model
from repro.daq import SPHENIX_FRAME_RATE_HZ, WEDGES_PER_FRAME, DAQConfig, StreamingCompressionSim, gpus_required
from repro.nn import Tensor
from repro.nn.pruning import prune_module, sparse_flops_factor
from repro.nn.quantization import calibrate_int8, int8_forward, quantize_weights_int8
from repro.perf import RTX_A6000, estimate_throughput, trace_encoder


def test_ext_pruning_throughput(benchmark):
    """Prune the BCAE-2D encoder and project the ideal sparse speedup."""

    def run():
        out = {}
        for amount in (0.0, 0.5, 0.8):
            nn.init.seed(0)
            model = build_model("bcae_2d", wedge_spatial=(16, 192, 249), seed=0)
            if amount:
                prune_module(model.encoder, amount)
            factor = sparse_flops_factor(model.encoder)
            trace = trace_encoder(model, (16, 192, 256), name=f"prune{amount}")
            dense = estimate_throughput(trace, 64, half=True)
            # Ideal sparse engine: GEMM FLOPs scale by the weight density.
            sparse_trace = dataclasses.replace(
                trace,
                layers=[
                    dataclasses.replace(
                        l, flops=l.flops * (factor if l.kind.startswith("Conv") else 1.0)
                    )
                    for l in trace.layers
                ],
            )
            sparse = estimate_throughput(sparse_trace, 64, half=True)
            out[amount] = (factor, dense, sparse)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report()
    report("Extension §4a — magnitude pruning of the BCAE-2D encoder")
    report(f"  {'sparsity':>9s} {'FLOP factor':>12s} {'dense w/s':>10s} {'ideal-sparse w/s':>17s}")
    for amount, (factor, dense, sparse) in results.items():
        report(f"  {amount:9.1f} {factor:12.3f} {dense:10.0f} {sparse:17.0f}")
    report("  (dense kernels cannot exploit the zeros; the gain needs sparse kernels,")
    report("   which is exactly why the paper defers this to future work)")
    assert results[0.8][2] > results[0.0][1]


def test_ext_int8_quantization(benchmark, bench_datasets):
    """W8A8 post-training quantization of the encoder: accuracy + speed."""

    train, _test = bench_datasets

    def run():
        nn.init.seed(0)
        model = build_model(
            "bcae_2d", wedge_spatial=train.geometry.wedge_shape, m=2, n=2, d=2, seed=0
        )
        x, _ = train.batch(np.arange(6))
        with nn.no_grad():
            ref = model.encode(Tensor(x)).data.copy()
        result = calibrate_int8(model.encoder, x)
        quantize_weights_int8(model.encoder, result)
        out = int8_forward(model.encoder, x, result)
        rel = float(np.abs(out - ref).max() / max(np.abs(ref).max(), 1e-9))

        # Throughput: int8 Tensor Cores double the fp16 peak on Ampere.
        paper_model = build_model("bcae_2d", wedge_spatial=(16, 192, 249), seed=0)
        trace = trace_encoder(paper_model, (16, 192, 256), name="bcae_2d")
        fp16 = estimate_throughput(trace, 64, half=True)
        int8_gpu = dataclasses.replace(
            RTX_A6000, fp16_tc_tflops=RTX_A6000.fp16_tc_tflops * 2.0
        )
        int8 = estimate_throughput(trace, 64, half=True, gpu=int8_gpu)
        return rel, fp16, int8, result.n_layers

    rel, fp16, int8, n_layers = benchmark.pedantic(run, rounds=1, iterations=1)
    report()
    report("Extension §4b — post-training INT8 quantization (W8A8, emulated)")
    report(f"  quantized conv layers: {n_layers}")
    report(f"  max relative code error vs fp32: {rel:.4f}")
    report(f"  modeled throughput: fp16 {fp16:.0f} w/s → int8 {int8:.0f} w/s "
           f"({int8 / fp16:.2f}x; upper bound from 2x TC peak)")
    assert rel < 0.2
    assert int8 > fp16


def test_ext_daq_sizing(benchmark):
    """§1 sizing: sustaining 77 kHz × 24 wedges with each BCAE variant."""

    rates = {"bcae_2d": 6900.0, "bcae_ht": 4600.0, "bcae_pp": 2600.0}

    def run():
        out = {}
        for name, rate in rates.items():
            n = gpus_required(rate, headroom=1.2)
            # Verify the sizing with the discrete-event simulation at a
            # 1/1000 scale (the queue dynamics are rate-scale-invariant).
            cfg = DAQConfig(
                frame_rate_hz=SPHENIX_FRAME_RATE_HZ / 1000.0,
                server_rate_wps=rate,
                n_servers=max(1, n // 1000 + 1),
                buffer_wedges=8192,
            )
            stats = StreamingCompressionSim(cfg, seed=0).run(n_frames=3000)
            out[name] = (n, stats)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report()
    report("Extension §1 — streaming-DAQ sizing (77 kHz × 24 wedges = 1.848 M w/s)")
    for name, (n, stats) in results.items():
        report(f"  {name:9s} needs ~{n:4d} GPUs (20% headroom); "
               f"scaled sim: {stats.row()}")
    report("  the 3x BCAE-2D speedup cuts the farm size accordingly — the paper's")
    report("  core motivation for the 2D redesign")
    assert results["bcae_2d"][0] < results["bcae_pp"][0]
    for _name, (_n, stats) in results.items():
        assert stats.drop_fraction < 0.05
