"""Figure 5 — reconstruction quality on one held-out test wedge.

Paper: shows ground truth vs reconstruction maps and difference maps for
BCAE-2D, BCAE++ and BCAE-HT; the BCAE++ difference map is visibly the
flattest (it is the most accurate model).

This bench round-trips one test wedge through each trained model and
reports the per-wedge error statistics that the paper's maps visualize.
"""

import numpy as np

from conftest import report

from repro.core import BCAECompressor
from repro.tpc import log_transform


def test_fig5_single_wedge_reconstruction(benchmark, trained_models, bench_datasets):
    _train, test = bench_datasets
    wedge = test.wedges[:1]  # one held-out wedge, as in the figure
    truth = log_transform(wedge)

    def reconstruct_all():
        out = {}
        for name, trainer in trained_models.items():
            comp = BCAECompressor(trainer.model, half=True)
            recon, _c = comp.roundtrip(wedge)
            out[name] = recon
        return out

    recons = benchmark.pedantic(reconstruct_all, rounds=1, iterations=1)

    report()
    report("Figure 5 — one test wedge: reconstruction error statistics")
    report(f"  truth occupancy: {(truth > 0).mean():.4f}, "
           f"nonzero range [{truth[truth > 0].min():.2f}, {truth.max():.2f}]")
    report(f"  {'model':9s} {'MAE':>8s} {'max|diff|':>10s} {'occ(recon)':>11s} "
           f"{'MAE@occupied':>13s}")
    stats = {}
    for name, recon in recons.items():
        diff = np.abs(recon - truth)
        occupied = truth > 0
        stats[name] = diff.mean()
        report(
            f"  {name:9s} {diff.mean():8.4f} {diff.max():10.3f} "
            f"{(recon > 0).mean():11.4f} {diff[occupied].mean():13.4f}"
        )
    report("  paper: BCAE++ shows the flattest difference map (most accurate),")
    report("  reconstructions live in {0} ∪ [6, 10] by construction")

    for name, recon in recons.items():
        values = recon[recon != 0]
        if values.size and name != "bcae_2d":
            # 3D variants use T(x) = 6 + 3e^x: nonzero outputs sit above 6.
            assert values.min() >= 6.0, name
        assert np.isfinite(stats[name])
