"""Figure 7 — BCAE-2D(m, n, d=3) encoder/decoder depth grid search.

Paper: MAE / precision / recall over m = 3..7 (encoder blocks) × n = 3..11
(decoder blocks).  Conclusion: *deepening the decoders* clearly helps, the
encoder depth is ambiguous — which motivates the unbalanced autoencoder
(cheap encoder online, deep decoder offline).

We run a reduced grid (m ∈ {3, 5}, n ∈ {3, 9}) at tiny scale with a small
epoch budget; the reported quantity is the paper's key *contrast*: the
accuracy gain from deepening decoders vs deepening the encoder.
"""

import numpy as np
import pytest

from conftest import bench_epochs, report

from repro.core import BCAE2D
from repro.train import TrainConfig, Trainer

_GRID_M = (3, 5)
_GRID_N = (3, 9)


def test_fig7_depth_grid(benchmark, bench_datasets):
    train, test = bench_datasets
    epochs = bench_epochs(6)

    def run_grid():
        from repro import nn

        results = {}
        for m in _GRID_M:
            for n in _GRID_N:
                nn.init.seed(7)
                model = BCAE2D(m=m, n=n, d=2)
                trainer = Trainer(
                    model,
                    TrainConfig(epochs=epochs, batch_size=4, warmup_epochs=epochs, seed=0),
                )
                trainer.fit(train)
                results[(m, n)] = trainer.evaluate(test, half=True)
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    report()
    report(f"Figure 7 — BCAE-2D depth grid (tiny scale, {epochs} epochs, d=2)")
    report(f"  {'(m, n)':9s} {'MAE':>8s} {'precision':>10s} {'recall':>8s}")
    for (m, n), metrics in sorted(results.items()):
        report(
            f"  ({m}, {n:2d})   {metrics.mae:8.4f} {metrics.precision:10.4f} "
            f"{metrics.recall:8.4f}"
        )

    # The paper's Figure-7 contrast, computed from our grid:
    mae = {k: v.mae for k, v in results.items()}
    decoder_gain = np.mean(
        [mae[(m, _GRID_N[0])] - mae[(m, _GRID_N[-1])] for m in _GRID_M]
    )
    encoder_gain = np.mean(
        [mae[(_GRID_M[0], n)] - mae[(_GRID_M[-1], n)] for n in _GRID_N]
    )
    report(f"  mean MAE gain from deeper decoders (n {_GRID_N[0]}→{_GRID_N[-1]}): {decoder_gain:+.4f}")
    report(f"  mean MAE gain from deeper encoder  (m {_GRID_M[0]}→{_GRID_M[-1]}): {encoder_gain:+.4f}")
    report("  paper: decoder depth helps clearly; encoder depth is ambiguous")

    for metrics in results.values():
        assert np.isfinite(metrics.mae)
        assert 0.0 <= metrics.precision <= 1.0


def test_fig7_structural_search(benchmark):
    """§3.5's selection workflow over the *full* paper grid (structural).

    Enumerates all 25 (m, n) candidates, attaches modeled throughput, and
    reports the Pareto frontier of (encoder size, throughput) plus the
    throughput ranking — the machinery behind picking BCAE-2D(4, 8, 3).
    """

    from repro.core import enumerate_candidates, pareto_front, throughput_frontier

    def run():
        cands = enumerate_candidates(
            ms=(3, 4, 5, 6, 7), ns=(3, 5, 7, 9, 11), ds=(3,)
        )
        throughput_frontier(cands)
        return cands, pareto_front(cands)

    cands, front = benchmark.pedantic(run, rounds=1, iterations=1)

    report()
    report("Figure 7 (structural) — the §3.5 grid and its throughput frontier")
    report(f"  candidates: {len(cands)}; all have ratio 31.125 (d=3)")
    for c in front[:3]:
        report("  pareto: " + c.row())
    report("  structural (size, throughput) frontier collapses onto m=3: encoder")
    report("  depth costs both size AND speed — accuracy (Figure 7's axis) is the")
    report("  only reason to grow m, which is why the paper pairs this grid with")
    report("  trained-accuracy maps before choosing BCAE-2D(4, 8, 3)")

    assert len(cands) == 25
    assert all(c.code_ratio == pytest.approx(31.125) for c in cands)
    # The structural degeneracy itself is the assertion: every frontier
    # member has the minimum encoder depth.
    assert front and all(c.m == 3 for c in front)
