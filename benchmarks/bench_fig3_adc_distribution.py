"""Figure 3 — distribution of log-ADC values.

Paper: the ground-truth ``log2(ADC + 1)`` spectrum is bimodal: a huge spike
at zero (~89% of voxels), nothing in (0, 6), a sharp edge at
``log2(65) ≈ 6.02`` from the zero-suppression threshold, then a falling tail
to 10 (counts dropping ~4 decades on a log axis).

This bench regenerates the histogram from the synthetic detector substrate
and reports the occupancy against the paper's 10.8%.
"""

import numpy as np

from conftest import report

from repro.tpc import log_transform


def test_fig3_log_adc_histogram(benchmark, bench_datasets):
    train, _test = bench_datasets

    def histogram():
        logv = log_transform(train.wedges)
        nz = logv[logv > 0]
        edges = np.array([6.0, 6.5, 7.0, 7.5, 8.0, 8.5, 9.0, 9.5, 10.01])
        counts, _ = np.histogram(nz, bins=edges)
        return counts, nz.size, logv.size

    counts, n_nonzero, n_total = benchmark(histogram)

    occupancy = n_nonzero / n_total
    report()
    report("Figure 3 — log-ADC distribution (synthetic TPC substrate)")
    report(f"  occupancy: {occupancy:.4f}   (paper: ~0.108)")
    report("  bin [lo, hi)   count      fraction of nonzero")
    edges = [6.0, 6.5, 7.0, 7.5, 8.0, 8.5, 9.0, 9.5, 10.0]
    for lo, hi, c in zip(edges[:-1], edges[1:], counts):
        bar = "#" * max(1, int(40 * c / max(counts.max(), 1)))
        report(f"  [{lo:4.1f},{hi:4.1f})  {int(c):9d}  {c / n_nonzero:8.4f}  {bar}")
    report("  paper shape: sharp edge at 6.02, monotone falling tail to 10")

    # Structural checks of the Figure-3 shape.
    assert counts[0] > 0
    assert counts[0] >= counts[2] >= counts[4], "spectrum must fall from the edge"
    logv = log_transform(train.wedges)
    nz = logv[logv > 0]
    assert nz.min() > 6.0, "zero-suppression edge must sit above 6"
    assert nz.max() <= 10.0, "10-bit ADC caps log values at 10"
