"""Full-pipeline integration: detector → training → compression → metrics."""

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.metrics import evaluate_reconstruction
from repro.nn import load_state, save_state
from repro.tpc import log_transform, unpad_horizontal
from repro.train import TrainConfig, Trainer, evaluate_model


@pytest.fixture(scope="module")
def pipeline(tiny_datasets_module):
    """Train a small BCAE-2D for a few epochs on tiny synthetic wedges."""

    train, test = tiny_datasets_module
    model = build_model(
        "bcae_2d", wedge_spatial=train.geometry.wedge_shape, m=2, n=3, d=2, seed=1
    )
    trainer = Trainer(model, TrainConfig(epochs=4, batch_size=4, warmup_epochs=2, decay_every=1))
    trainer.fit(train)
    return trainer, train, test


@pytest.fixture(scope="module")
def tiny_datasets_module():
    from repro.tpc import TINY_GEOMETRY, generate_wedge_dataset

    return generate_wedge_dataset(2, geometry=TINY_GEOMETRY, seed=11)


class TestPipeline:
    def test_generalizes_to_test_events(self, pipeline):
        """Trained on train events, evaluated on held-out events."""

        trainer, _train, test = pipeline
        untrained = build_model(
            "bcae_2d", wedge_spatial=test.geometry.wedge_shape, m=2, n=3, d=2, seed=77
        )
        before = evaluate_model(untrained, test)
        after = trainer.evaluate(test)
        # MAE/MSE are the robust comparators here: an untrained net scores a
        # deceptively high recall simply by over-predicting positives.
        assert after.mae < before.mae
        assert after.mse < before.mse

    def test_compressor_roundtrip_with_trained_model(self, pipeline):
        trainer, _train, test = pipeline
        comp = BCAECompressor(trainer.model, half=True)
        raw = test.wedges[:2]
        recon, compressed = comp.roundtrip(raw)
        assert recon.shape == raw.shape
        # d=2 on 16-channel input with 32-channel code: 16/32 · 4·4 = 8×.
        ratio = comp.compression_ratio(test.geometry.wedge_shape)
        assert ratio == pytest.approx(8.0)

    def test_metrics_computed_on_unpadded_region(self, pipeline):
        """§2.3: evaluation clips the zero padding, never inflating scores."""

        trainer, _train, test = pipeline
        comp = BCAECompressor(trainer.model)
        raw = test.wedges[:1]
        recon, _ = comp.roundtrip(raw)
        truth = log_transform(raw)
        m = evaluate_reconstruction(
            recon, (recon > 0).astype(np.float32), truth
        )
        assert np.isfinite(m.mae)
        assert recon.shape[-1] == raw.shape[-1]

    def test_checkpoint_roundtrip_preserves_metrics(self, pipeline, tmp_path):
        trainer, _train, test = pipeline
        path = save_state(trainer.model, tmp_path / "ckpt.npz")
        clone = build_model(
            "bcae_2d", wedge_spatial=test.geometry.wedge_shape, m=2, n=3, d=2, seed=123
        )
        load_state(clone, path)
        a = evaluate_model(trainer.model, test, max_batches=2)
        b = evaluate_model(clone, test, max_batches=2)
        assert a.mae == pytest.approx(b.mae, rel=1e-5)

    def test_segmentation_head_learns_occupancy(self, pipeline):
        """After training, predicted-positive fraction approaches the truth."""

        trainer, _train, test = pipeline
        x, labels = test.batch(np.arange(min(4, len(test))))
        from repro import nn
        from repro.nn import Tensor

        with nn.no_grad():
            out = trainer.model(Tensor(x))
        predicted_frac = float((out.seg.data > 0.5).mean())
        true_frac = float(labels.mean())
        untrained = build_model(
            "bcae_2d", wedge_spatial=test.geometry.wedge_shape, m=2, n=3, d=2, seed=55
        )
        with nn.no_grad():
            out0 = untrained(Tensor(x))
        untrained_frac = float((out0.seg.data > 0.5).mean())
        assert abs(predicted_frac - true_frac) < abs(untrained_frac - true_frac)


class Test3DPipelineSmoke:
    def test_bcae_ht_trains_one_epoch(self, tiny_datasets_module):
        train, _test = tiny_datasets_module
        model = build_model("bcae_ht", wedge_spatial=train.geometry.wedge_shape, seed=0)
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=4))
        hist = trainer.fit(train)
        assert len(hist) == 1
        assert np.isfinite(hist[0].seg_loss)
        m = trainer.evaluate(train, max_batches=1)
        assert np.isfinite(m.mae)
