"""CLI surface: every subcommand runs end to end at tiny scale."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "--events", "1"])
        assert args.command == "generate"
        for cmd in ("train", "evaluate", "throughput", "compare"):
            assert parser.parse_args([cmd] + (
                ["--checkpoint", "x", "--data", "y"] if cmd == "evaluate" else []
            )).command == cmd

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "w.npz"
        rc = main(["generate", "--events", "1", "--scale", "tiny", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "occupancy" in capsys.readouterr().out

    def test_train_evaluate_cycle(self, tmp_path, capsys):
        data = tmp_path / "w.npz"
        ckpt = tmp_path / "ckpt.npz"
        main(["generate", "--events", "1", "--scale", "tiny", "--out", str(data)])
        rc = main([
            "train", "--data", str(data), "--epochs", "1", "--m", "1", "--n", "1",
            "--checkpoint", str(ckpt),
        ])
        assert rc == 0
        assert ckpt.exists()
        rc = main([
            "evaluate", "--data", str(data), "--checkpoint", str(ckpt),
            "--m", "1", "--n", "1", "--half",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MAE=" in out

    def test_throughput(self, capsys):
        rc = main(["throughput", "--model", "bcae_ht", "--batches", "1,8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TC-eligible" in out
        assert "speedup" in out

    def test_compare(self, tmp_path, capsys):
        data = tmp_path / "w.npz"
        main(["generate", "--events", "1", "--scale", "tiny", "--out", str(data)])
        rc = main(["compare", "--data", str(data), "--wedges", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sz_like" in out and "zfp_like" in out and "mgard_like" in out


class TestExtensionCommands:
    def test_search(self, capsys):
        rc = main(["search", "--ms", "3,4", "--ns", "3,8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pareto frontier" in out
        assert "BCAE-2D(m=3" in out

    def test_daq(self, capsys):
        rc = main(["daq", "--rate", "6900", "--frames", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "M wedges/s" in out
        assert "GPUs" in out

    def test_serve(self, capsys):
        rc = main([
            "serve", "--wedges", "12", "--batch", "4",
            "--m", "2", "--n", "2", "--d", "2", "--baseline",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput=" in out
        assert "payload parity with serial path: OK" in out

    def test_serve_workers(self, capsys):
        rc = main([
            "serve", "--wedges", "8", "--batch", "4", "--workers", "2",
            "--m", "1", "--n", "1", "--d", "1",
        ])
        assert rc == 0
        assert "workers=2" in capsys.readouterr().out

    def test_serve_archive_then_decompress(self, tmp_path, capsys):
        """The round-trip CLI story: serve → archive → decompress --verify."""

        archive = tmp_path / "codes.npz"
        out = tmp_path / "recon.npz"
        rc = main([
            "serve", "--wedges", "6", "--batch", "3",
            "--m", "2", "--n", "2", "--d", "2", "--archive", str(archive),
        ])
        assert rc == 0
        assert archive.exists()
        rc = main([
            "decompress", "--archive", str(archive), "--out", str(out),
            "--m", "2", "--n", "2", "--d", "2", "--verify", "--adc",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "parity with module-graph decompress: OK" in text
        data = np.load(out)
        assert data["recon_log"].shape[0] == 6
        assert data["recon_adc"].dtype == np.uint16
