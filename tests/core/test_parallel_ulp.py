"""Slot-parallel panel executor + opt-in ulp tier: determinism and bounds.

The executor's contract is *bit-identity at any width*: slot ``s`` of ``T``
owns panels ``s, s+T, …`` with per-slot workspace slabs and deterministic
output placement, so the payload and reconstruction bytes cannot depend on
the thread count.  The ulp tier's contract is *bounded, recorded
relaxation*: a probe-rejected formulation is kept only when its measured
deviation fits :data:`~repro.core.fast_plan.ULP_TIER_MAX_ULP` grid steps
at stage scale, every engagement lands on ``plan.ulp_sites``, and the
archive round trip stays within
:data:`~repro.core.fast_plan.ULP_TIER_RECON_GRID_STEPS` of the bit tier.
"""

import numpy as np
import pytest

import repro.core.fast_plan as fp
from repro.core import BCAECompressor, build_model
from repro.core.fast_plan import (
    PANEL_THREADS_ENV,
    PRECISIONS,
    ULP_TIER_MAX_ULP,
    ULP_TIER_RECON_GRID_STEPS,
    grid_steps_at_scale,
)
from repro.core.model_zoo import MODEL_NAMES


@pytest.fixture
def small_blocks(monkeypatch):
    """Shrink the blocked-GEMM engagement thresholds so the panel-blocked
    im2col paths (and with them the parallel executor) run at test scale."""

    monkeypatch.setattr(fp, "_BLOCKED_MIN_BYTES", 1 << 10)
    monkeypatch.setattr(fp, "_PANEL_BYTES", 1 << 12)


def _build(name, seed=3):
    kw = (dict(wedge_spatial=(16, 24, 30), m=2, n=2, d=2)
          if name == "bcae_2d" else dict(wedge_spatial=(8, 16, 14)))
    model = build_model(name, seed=seed, **kw)
    model.eval()
    sp = (3, 16, 24, 30) if name == "bcae_2d" else (3, 8, 16, 14)
    rng = np.random.default_rng(7)
    raw = rng.integers(0, 1024, size=sp, dtype=np.uint16)
    raw[raw < 600] = 0
    return model, raw


def _bn_modules(obj):
    """All BatchNorm modules reachable through the object graph."""

    found, stack, seen = [], [obj], set()
    while stack:
        o = stack.pop()
        if id(o) in seen:
            continue
        seen.add(id(o))
        if type(o).__name__.startswith("BatchNorm"):
            found.append(o)
        for v in vars(o).values():
            if hasattr(v, "__dict__"):
                stack.append(v)
            elif isinstance(v, (list, tuple)):
                stack.extend(x for x in v if hasattr(x, "__dict__"))
    return found


def _all_plans(comp):
    """(label, plan) for the compressor's compiled encoder + decoder heads."""

    plans = [("encoder", comp._fast_encoder().plan)]
    plans += [(f"decoder.{head}", plan)
              for head, plan in comp._fast_decoder().plans.items()]
    return plans


class TestThreadInvariance:
    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_bits_identical_across_widths(self, small_blocks, name,
                                          precision):
        """Payload and reconstruction bytes match at widths 1/2/4 for
        every Table-1 model under both precision tiers."""

        model, raw = _build(name)
        payloads, recons = [], []
        for t in (1, 2, 4):
            comp = BCAECompressor(model, half=True, precision=precision,
                                  panel_threads=t)
            cw = comp.compress_into(raw)
            payloads.append(bytes(cw.payload))
            recons.append(np.array(comp.decompress_into(cw), copy=True))
        assert all(p == payloads[0] for p in payloads[1:]), \
            f"{name}/{precision}: payload depends on panel width"
        assert all(np.array_equal(r, recons[0]) for r in recons[1:]), \
            f"{name}/{precision}: reconstruction depends on panel width"

    def test_repeated_runs_stable(self, small_blocks):
        """The threaded path is deterministic run to run, not just
        width to width."""

        model, raw = _build("bcae_ht")
        comp = BCAECompressor(model, half=True, panel_threads=4)
        first = bytes(comp.compress_into(raw).payload)
        for _ in range(3):
            assert bytes(comp.compress_into(raw).payload) == first


class TestPanelThreadsKnob:
    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(PANEL_THREADS_ENV, "3")
        assert fp._resolve_panel_threads(None) == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(PANEL_THREADS_ENV, "3")
        assert fp._resolve_panel_threads(2) == 2

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(PANEL_THREADS_ENV, raising=False)
        assert fp._resolve_panel_threads(None) == 1

    def test_floor_is_one(self):
        assert fp._resolve_panel_threads(0) == 1
        assert fp._resolve_panel_threads(-2) == 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(PANEL_THREADS_ENV, "fast")
        with pytest.raises(ValueError):
            fp._resolve_panel_threads(None)

    def test_env_reaches_plan(self, monkeypatch):
        monkeypatch.setenv(PANEL_THREADS_ENV, "2")
        model, _raw = _build("bcae_ht")
        comp = BCAECompressor(model, half=True)
        assert comp._fast_encoder().plan.panel_threads == 2


class TestUlpTier:
    def test_invalid_precision_rejected(self):
        model, _raw = _build("bcae_ht")
        with pytest.raises(ValueError):
            BCAECompressor(model, precision="approximately")

    def test_bit_default_records_no_sites(self, small_blocks):
        """The default tier must never engage a relaxed formulation."""

        model, raw = _build("bcae")
        comp = BCAECompressor(model, half=True)
        comp.decompress_into(comp.compress_into(raw))
        for label, plan in _all_plans(comp):
            assert plan.ulp_sites == [], \
                f"{label}: relaxed site engaged under precision='bit'"

    def test_roundtrip_bound(self, small_blocks):
        """Mildly perturbed BN running statistics: the fold probe measures
        a nonzero-but-tiny deviation, so the bit tier keeps the affine
        stages while the ulp tier folds them — with a recorded per-site
        bound and an end-to-end recon inside the grid-step contract."""

        model, raw = _build("bcae")
        rng = np.random.default_rng(5)
        bns = _bn_modules(model)
        assert bns, "bcae must carry BatchNorm stages"
        for bn in bns:
            rv = bn.running_var
            rv[...] = (1.0 + rng.random(size=rv.shape) * 3e-7).astype(
                rv.dtype)
        model.eval()

        comp_bit = BCAECompressor(model, half=True, precision="bit")
        comp_ulp = BCAECompressor(model, half=True, precision="ulp")
        cw_bit = comp_bit.compress_into(raw)
        cw_ulp = comp_ulp.compress_into(raw)
        rec_bit = np.array(comp_bit.decompress_into(cw_bit), copy=True)
        rec_ulp = np.array(comp_ulp.decompress_into(cw_ulp), copy=True)

        sites = [s for _label, plan in _all_plans(comp_ulp)
                 for s in plan.ulp_sites]
        assert sites, "ulp tier did not engage on the perturbed folds"
        assert all(s["max_ulp"] <= ULP_TIER_MAX_ULP for s in sites)
        # Under bit the same folds must have been refused.
        for label, plan in _all_plans(comp_bit):
            assert plan.ulp_sites == []
        steps = grid_steps_at_scale(rec_ulp.astype(np.float32),
                                    rec_bit.astype(np.float32), True)
        assert steps <= ULP_TIER_RECON_GRID_STEPS, \
            f"archive round trip off by {steps} grid steps"

    def test_ulp_deterministic(self, small_blocks):
        """Relaxed numerics are still deterministic: two ulp compressors
        produce the same bytes as each other at every width."""

        model, raw = _build("bcae")
        ref = None
        for t in (1, 4):
            comp = BCAECompressor(model, half=True, precision="ulp",
                                  panel_threads=t)
            payload = bytes(comp.compress_into(raw).payload)
            if ref is None:
                ref = payload
            assert payload == ref


class TestPlanStats:
    def test_stats_record_execution(self, small_blocks):
        model, raw = _build("bcae_ht")
        comp = BCAECompressor(model, half=True, panel_threads=2)
        comp.decompress_into(comp.compress_into(raw))
        for label, plan in _all_plans(comp):
            stats = plan.plan_stats()
            assert stats["precision"] == "bit"
            assert stats["panel_threads"] == 2
            assert stats["stage_kinds"]
            assert stats["workspace_bytes"] > 0
        dec_stats = [plan.plan_stats()
                     for _l, plan in _all_plans(comp)[1:]]
        gemms = [g for s in dec_stats for g in s["gemms"].values()]
        assert gemms, "decoder ran no recorded GEMM sites"
        assert {g["formulation"] for g in gemms} <= {
            "blocked", "blocked_pad", "blocked_ref", "transposed",
            "reference"}
        blocked = [g for g in gemms if g["formulation"].startswith("blocked")]
        assert blocked, "no panel-blocked site engaged at test scale"
        assert all(g["threads"] >= 1 for g in blocked)
