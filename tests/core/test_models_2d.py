"""BCAE-2D: Algorithm 1/2 structure, code shapes, m/n/d parameterization."""

import numpy as np
import pytest

from repro import nn
from repro.core import BCAE2D, BCAEDecoder2D, BCAEEncoder2D, build_bcae2d
from repro.nn import Tensor


class TestEncoderAlgorithm1:
    def test_paper_code_shape(self):
        """Paper §2.4: BCAE-2D with d=3 produces a (32, 24, 32) code."""

        enc = BCAEEncoder2D(m=4, d=3)
        assert enc.code_shape((192, 256)) == (32, 24, 32)

    def test_forward_shape(self, rng):
        enc = BCAEEncoder2D(m=4, d=3)
        out = enc(Tensor(rng.normal(size=(1, 16, 48, 64)).astype(np.float32)))
        assert out.shape == (1, 32, 6, 8)

    def test_d_cannot_exceed_m(self):
        with pytest.raises(ValueError):
            BCAEEncoder2D(m=2, d=3)

    def test_downsampling_factor(self, rng):
        for d in (1, 2, 3):
            enc = BCAEEncoder2D(m=3, d=d)
            out = enc(Tensor(rng.normal(size=(1, 16, 32, 32)).astype(np.float32)))
            assert out.shape[-1] == 32 // 2**d

    def test_indivisible_spatial_raises(self):
        with pytest.raises(ValueError):
            BCAEEncoder2D(m=4, d=3).code_shape((50, 64))

    def test_m_adds_blocks_not_downsampling(self, rng):
        """Blocks beyond d keep resolution constant (Algorithm 1 line 4)."""

        small = BCAEEncoder2D(m=3, d=3)
        large = BCAEEncoder2D(m=7, d=3)
        x = Tensor(rng.normal(size=(1, 16, 32, 32)).astype(np.float32))
        assert small(x).shape == large(x).shape

    def test_encoder_size_ladder_matches_fig6e(self):
        """Fig. 6E: ~36.2k parameters per extra encoder block."""

        sizes = {m: BCAEEncoder2D(m=m, d=3).num_parameters() for m in (3, 4, 5)}
        per_block = sizes[4] - sizes[3]
        assert per_block == sizes[5] - sizes[4]
        assert 30_000 < per_block < 42_000


class TestDecoderAlgorithm2:
    def test_upsamples_back(self, rng):
        dec = BCAEDecoder2D(n=4, d=3)
        out = dec(Tensor(rng.normal(size=(1, 32, 6, 8)).astype(np.float32)))
        assert out.shape == (1, 16, 48, 64)

    def test_sigmoid_head_in_unit_interval(self, rng):
        dec = BCAEDecoder2D(n=3, d=3, output_activation="sigmoid")
        out = dec(Tensor(rng.normal(size=(1, 32, 4, 4)).astype(np.float32)))
        assert out.data.min() >= 0.0 and out.data.max() <= 1.0

    def test_d_cannot_exceed_n(self):
        with pytest.raises(ValueError):
            BCAEDecoder2D(n=2, d=3)

    def test_deeper_decoder_keeps_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 32, 4, 4)).astype(np.float32))
        assert BCAEDecoder2D(n=3, d=2)(x).shape == BCAEDecoder2D(n=9, d=2)(x).shape


class TestBCAE2DModel:
    def test_default_is_paper_choice(self):
        """§2.4: BCAE-2D(m=4, n=8, d=3) is the default configuration."""

        model = BCAE2D()
        assert (model.m, model.n, model.d) == (4, 8, 3)

    def test_roundtrip_shapes(self, rng):
        model = BCAE2D(m=2, n=2, d=2)
        x = Tensor(rng.normal(size=(2, 16, 24, 32)).astype(np.float32))
        out = model(x)
        assert out.code.shape == (2, 32, 6, 8)
        assert out.seg.shape == x.shape
        assert out.reg.shape == x.shape

    def test_reconstruction_masking(self, rng):
        model = BCAE2D(m=2, n=2, d=2)
        x = Tensor(rng.normal(size=(1, 16, 16, 16)).astype(np.float32))
        out = model(x)
        recon = out.reconstruction(threshold=0.5)
        mask = out.seg.data > 0.5
        assert np.all(recon[~mask] == 0.0)
        np.testing.assert_array_equal(recon[mask], out.reg.data[mask])

    def test_unbalanced_decoder_does_not_change_encoder(self):
        """Fig. 7's premise: n only grows the decoders."""

        a, b = BCAE2D(m=4, n=3), BCAE2D(m=4, n=11)
        assert a.encoder_parameters() == b.encoder_parameters()
        assert b.decoder_parameters() > a.decoder_parameters()

    def test_factory(self):
        model = build_bcae2d(m=3, n=5, d=2)
        assert (model.m, model.n, model.d) == (3, 5, 2)

    def test_gradients_reach_encoder_through_both_heads(self, rng):
        model = BCAE2D(m=1, n=1, d=1)
        x = Tensor(rng.normal(size=(1, 16, 8, 8)).astype(np.float32))
        out = model(x)
        loss = nn.focal_loss(out.seg, (rng.random(out.seg.shape) > 0.9).astype(np.float32))
        loss = loss + nn.masked_mae_loss(out.reg, out.seg, x.data)
        loss.backward()
        first_conv = model.encoder.stages[0]
        assert first_conv.weight.grad is not None
        assert np.abs(first_conv.weight.grad).max() > 0
