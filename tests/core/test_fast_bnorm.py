"""BatchNorm on the compiled fast path: vocabulary, folding, bit-identity.

The original BCAE (arXiv:2111.05423) keeps BatchNorm in every residual
block; eval-mode BatchNorm is a fixed per-channel affine, so the stage-plan
engine compiles it — folded into an adjacent convolution where the
calibration probe proves bit-equality, as an exact affine ``bnorm`` stage
everywhere else.  These tests pin down:

* the vocabulary rules (eval-only, fp32-only, placement),
* the fold decisions and their recorded reasons,
* bit-identity with the eval-mode module graph across both precision
  modes, batch sizes, and the archive round trip.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import BCAECompressor, build_model
from repro.core.fast_decode import make_fast_decoder, supports_fast_decode
from repro.core.fast_encode import make_fast_encoder, supports_fast_encode
from repro.core.fast_plan import (
    CompiledStagePlan,
    fold_batchnorm,
    stage_kinds,
)
from repro.core.fast_plan import _BNSpec
from repro.nn import Tensor
from repro.nn.amp import quantize_fp16
from repro.nn.convolution import conv_forward
from repro.nn.norm import BatchNorm2d, BatchNormNd


def _randomize_bn(model, seed=1):
    """Non-trivial running statistics and affine parameters everywhere."""

    rng = np.random.default_rng(seed)
    for _name, m in model.named_modules():
        if isinstance(m, BatchNormNd):
            c = m.num_features
            m.set_buffer("running_mean", rng.normal(0, 0.5, c).astype(np.float32))
            m.set_buffer("running_var", (0.5 + rng.random(c)).astype(np.float32))
            m.weight.data[:] = rng.normal(1, 0.2, c).astype(np.float32)
            m.bias.data[:] = rng.normal(0, 0.2, c).astype(np.float32)


def _bcae(spatial=(8, 16, 14), seed=0, randomize=True):
    model = build_model("bcae", wedge_spatial=spatial, seed=seed)
    model.eval()
    if randomize:
        _randomize_bn(model)
    return model


def _wedges(n, spatial, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.integers(0, 1024, size=(n,) + spatial).astype(np.uint16)
    w[w < 500] = 0
    return w


class TestVocabulary:
    def test_standalone_bnorm_classified(self):
        bn = BatchNorm2d(4)
        bn.eval()
        stages = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), bn,
                               nn.Conv2d(4, 2, 1))
        assert stage_kinds(stages) == ["conv", "bnorm", "conv"]

    def test_training_bnorm_rejected(self):
        bn = BatchNorm2d(4)  # Module default: training mode
        stages = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), bn,
                               nn.Conv2d(4, 2, 1))
        assert stage_kinds(stages) is None

    def test_trailing_bnorm_rejected(self):
        """A trailing affine would return a quantized store of an
        unquantized module output — outside the plan contract."""

        bn = BatchNorm2d(4)
        bn.eval()
        stages = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), bn)
        assert stage_kinds(stages) is None

    def test_bnorm_before_head_rejected(self):
        bn = BatchNorm2d(4)
        bn.eval()
        stages = nn.Sequential(nn.Conv2d(3, 4, 1), bn, nn.Sigmoid())
        assert stage_kinds(stages) is None

    def test_non_fp32_bnorm_rejected(self):
        bn = BatchNorm2d(4)
        bn.eval()
        bn.set_buffer("running_mean", np.zeros(4, dtype=np.float64))
        stages = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), bn,
                               nn.Conv2d(4, 2, 1))
        assert stage_kinds(stages) is None

    def test_normed_blocks_classified(self):
        model = _bcae()
        assert stage_kinds(model.encoder.blocks) is not None
        assert supports_fast_encode(model)
        assert supports_fast_decode(model)

    def test_entry_rule_requires_conv_like_first(self):
        """Wrapper-prepared canvases stand in for the first conv's entry
        quantize — a stack leading with a norm/pool consumes the
        unquantized stream in the module path and must not compile."""

        from repro.core.fast_plan import DECODE_ENTRY_KINDS, entry_kinds_ok

        allowed = {"conv", "pool", "up", "res", "bnorm", "identity"}
        assert entry_kinds_ok(["conv", "pool"], allowed)
        assert entry_kinds_ok(["identity", "res", "conv"], allowed)
        assert not entry_kinds_ok(["pool", "conv"], allowed)
        assert not entry_kinds_ok(["bnorm", "conv"], allowed)
        assert not entry_kinds_ok(["identity"], allowed)
        assert not entry_kinds_ok(None, allowed)
        # Decoder entry prep is a clip of grid values: leading up/pool are
        # exact there (the BCAE-2D decoders start with an upsample) — but
        # a leading bnorm still never compiles.
        assert entry_kinds_ok(["up", "res", "conv"], allowed,
                              entry=DECODE_ENTRY_KINDS)
        assert not entry_kinds_ok(["bnorm", "conv"], allowed,
                                  entry=DECODE_ENTRY_KINDS)


class TestFoldDecisions:
    def test_identity_affine_folds_into_following_conv(self):
        """eps=0 with default statistics makes the affine the exact
        identity — the one fold the calibration probe can prove."""

        bn = BatchNorm2d(4, eps=0.0)
        bn.eval()
        stages = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), bn,
                               nn.Conv2d(4, 2, 3, padding=1))
        for half in (True, False):
            plan = CompiledStagePlan(stages, half=half)
            (rec,) = plan.bn_folds
            assert rec["folded"] and rec["site"] == "bnorm->conv"

    def test_nontrivial_affine_keeps_stage_with_reason(self):
        """General statistics reassociate fp32 rounding — the probe must
        reject the fold and the record must say why."""

        bn = BatchNorm2d(4)
        bn.eval()
        rng = np.random.default_rng(3)
        bn.set_buffer("running_mean", rng.normal(0, 1, 4).astype(np.float32))
        bn.set_buffer("running_var", (0.3 + rng.random(4)).astype(np.float32))
        bn.weight.data[:] = rng.normal(1, 0.3, 4).astype(np.float32)
        bn.bias.data[:] = rng.normal(0, 0.3, 4).astype(np.float32)
        stages = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), bn,
                               nn.Conv2d(4, 2, 3, padding=1))
        plan = CompiledStagePlan(stages, half=True)
        (rec,) = plan.bn_folds
        assert not rec["folded"]
        assert "probe" in rec["reason"] or "reassociates" in rec["reason"]

    def test_block_norms_recorded_per_site(self):
        """Every BatchNorm in a residual block gets a per-stage record:
        norm1 is the fold candidate, norm2/norm3 have no adjacent conv."""

        model = _bcae()
        enc = make_fast_encoder(model)
        sites = {r["site"] for r in enc.bn_folds}
        assert sites == {"norm1->inner-conv", "norm2", "norm3"}
        assert all("reason" in r for r in enc.bn_folds)
        dec = make_fast_decoder(model)
        assert len(dec.bn_folds) == 2 * len(enc.bn_folds)

    def test_fold_algebra_bn_conv(self):
        """γ/σ into weight columns, β−μγ/σ through the bias epilogue
        (valid algebra away from zero-padding borders)."""

        bn = BatchNorm2d(4)
        bn.eval()
        rng = np.random.default_rng(9)
        bn.set_buffer("running_mean", rng.normal(0, 1, 4).astype(np.float32))
        bn.set_buffer("running_var", (0.3 + rng.random(4)).astype(np.float32))
        bn.weight.data[:] = rng.normal(1, 0.3, 4).astype(np.float32)
        bn.bias.data[:] = rng.normal(0, 0.3, 4).astype(np.float32)
        spec = _BNSpec.from_module(bn)
        w = rng.normal(0, 1, (5, 4, 3, 3)).astype(np.float32)
        b = rng.normal(0, 1, 5).astype(np.float32)
        x = rng.normal(0, 1, (2, 4, 6, 6)).astype(np.float32)
        sh = (1, 4, 1, 1)
        bnx = ((x - spec.mean.reshape(sh)) * spec.inv_std.reshape(sh)
               ) * spec.gamma.reshape(sh) + spec.beta.reshape(sh)
        wf, bf = fold_batchnorm(spec, w, b, "bn_conv")
        pad0 = ((0, 0), (0, 0))
        np.testing.assert_allclose(
            conv_forward(x, wf, (1, 1), pad0, bias=bf),
            conv_forward(bnx, w, (1, 1), pad0, bias=b),
            rtol=1e-4, atol=1e-4,
        )

    def test_fold_algebra_conv_bn(self):
        """γ/σ into weight rows, b·s + t as the new bias."""

        bn = BatchNorm2d(4)
        bn.eval()
        rng = np.random.default_rng(11)
        bn.set_buffer("running_mean", rng.normal(0, 1, 4).astype(np.float32))
        bn.set_buffer("running_var", (0.3 + rng.random(4)).astype(np.float32))
        bn.weight.data[:] = rng.normal(1, 0.3, 4).astype(np.float32)
        bn.bias.data[:] = rng.normal(0, 0.3, 4).astype(np.float32)
        spec = _BNSpec.from_module(bn)
        w = rng.normal(0, 1, (4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(0, 1, 4).astype(np.float32)
        x = rng.normal(0, 1, (2, 3, 6, 6)).astype(np.float32)
        y = conv_forward(x, w, (1, 1), ((1, 1), (1, 1)), bias=b)
        sh = (1, 4, 1, 1)
        bny = ((y - spec.mean.reshape(sh)) * spec.inv_std.reshape(sh)
               ) * spec.gamma.reshape(sh) + spec.beta.reshape(sh)
        wf, bf = fold_batchnorm(spec, w, b, "conv_bn")
        np.testing.assert_allclose(
            conv_forward(x, wf, (1, 1), ((1, 1), (1, 1)), bias=bf),
            bny, rtol=1e-4, atol=1e-4,
        )

    def test_unknown_direction_raises(self):
        bn = BatchNorm2d(2)
        bn.eval()
        with pytest.raises(ValueError):
            fold_batchnorm(_BNSpec.from_module(bn),
                           np.zeros((2, 2, 1, 1), np.float32), None, "sideways")


class TestBitIdentityOriginalBCAE:
    """The contract: compiled original-BCAE == eval-mode module graph."""

    @pytest.mark.parametrize("half", [True, False])
    def test_encode_matches_module_path(self, half):
        model = _bcae()
        fe = make_fast_encoder(model, half=half)
        for b in (1, 2, 4):
            w = _wedges(b, (8, 16, 14), seed=b)
            x = np.log2(w.astype(np.float32) + 1.0)
            with nn.no_grad(), nn.amp.autocast(half):
                ref = model.encode(Tensor(x)).data.astype(np.float16)
            got = fe.encode(x, horizontal_target=model.encoder.spatial[-1])
            np.testing.assert_array_equal(ref, np.asarray(got))

    @pytest.mark.parametrize("half", [True, False])
    def test_decode_matches_module_path(self, half):
        model = _bcae()
        comp = BCAECompressor(model, half=half)
        fd = make_fast_decoder(model, half=half)
        for b in (1, 3):
            c = comp.compress(_wedges(b, (8, 16, 14), seed=b))
            with nn.no_grad(), nn.amp.autocast(half):
                seg_r, reg_r = model.decode(
                    Tensor(c.codes_view().astype(np.float32))
                )
            seg, reg = fd.decode(c.codes_view())
            np.testing.assert_array_equal(seg_r.data, np.asarray(seg))
            np.testing.assert_array_equal(reg_r.data, np.asarray(reg))

    @pytest.mark.parametrize("half", [True, False])
    def test_compressor_roundtrip_bitexact(self, half):
        """compress_into / decompress_into == the reference methods, and
        the archive round trip preserves every byte."""

        from repro.io.codes import load_compressed, save_compressed

        model = _bcae()
        comp = BCAECompressor(model, half=half)
        raw = _wedges(2, (8, 16, 14), seed=21)
        ref_payload = comp.compress(raw)
        fast_payload = comp.compress_into(raw)
        assert bytes(fast_payload.payload) == bytes(ref_payload.payload)
        np.testing.assert_array_equal(
            np.asarray(comp.decompress_into(ref_payload)),
            comp.decompress(ref_payload),
        )
        import tempfile, pathlib
        with tempfile.TemporaryDirectory() as td:
            path = pathlib.Path(td) / "codes.npz"
            save_compressed(fast_payload, path, model_name="bcae")
            loaded, name = load_compressed(path)
            assert name == "bcae"
            assert bytes(loaded.payload) == bytes(ref_payload.payload)
            np.testing.assert_array_equal(
                np.asarray(comp.decompress_into(loaded)),
                comp.decompress(ref_payload),
            )

    def test_folded_identity_norm1_stays_bitexact(self):
        """When norm1 provably folds into the inner conv (identity affine,
        eps=0), block outputs still match the module graph bit for bit."""

        model = build_model("bcae", wedge_spatial=(8, 16, 14), seed=0)
        model.eval()
        for _name, m in model.named_modules():
            if isinstance(m, BatchNormNd):
                m.eps = 0.0  # default stats: the affine is the identity
        fe = make_fast_encoder(model, half=True)
        assert any(r["folded"] for r in fe.bn_folds
                   if r["site"] == "norm1->inner-conv")
        w = _wedges(2, (8, 16, 14), seed=5)
        x = np.log2(w.astype(np.float32) + 1.0)
        with nn.no_grad(), nn.amp.autocast(True):
            ref = model.encode(Tensor(x)).data.astype(np.float16)
        got = fe.encode(x, horizontal_target=model.encoder.spatial[-1])
        np.testing.assert_array_equal(ref, np.asarray(got))


class TestStandalonePlan:
    @pytest.mark.parametrize("half", [True, False])
    def test_mid_stack_affine_bitexact(self, half):
        """conv → bnorm → conv → sigmoid through the raw plan API."""

        nn.init.seed(4)
        bn = BatchNorm2d(4)
        bn.eval()
        rng = np.random.default_rng(7)
        bn.set_buffer("running_mean", rng.normal(0, 1, 4).astype(np.float32))
        bn.set_buffer("running_var", (0.3 + rng.random(4)).astype(np.float32))
        bn.weight.data[:] = rng.normal(1, 0.3, 4).astype(np.float32)
        bn.bias.data[:] = rng.normal(0, 0.3, 4).astype(np.float32)
        stages = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), bn,
                               nn.Conv2d(4, 2, 3, padding=1), nn.Sigmoid())
        plan = CompiledStagePlan(stages, half=half)
        x = rng.normal(0, 2, (3, 3, 8, 8)).astype(np.float32)
        with nn.no_grad(), nn.amp.autocast(half):
            ref = stages(Tensor(x)).data
        canvas, interior = plan.input_canvas(3, 3, (8, 8))
        xin = quantize_fp16(x) if half else x
        np.copyto(interior, xin.transpose(1, 0, 2, 3))
        out = plan.run(canvas, (8, 8), float(np.abs(x).max()))
        np.testing.assert_array_equal(ref, out.transpose(1, 0, 2, 3))


class TestServingWiring:
    def test_services_eval_batchnorm_models(self):
        """The serving layer is inference-only: a training-mode BatchNorm
        model handed to a service must be eval()ed and served through the
        compiled engine, byte-identical to serial eval-mode compress."""

        from repro.serve import (
            DecompressionService,
            ServiceConfig,
            StreamingCompressionService,
        )

        model = build_model("bcae", wedge_spatial=(8, 16, 14), seed=0)
        _randomize_bn(model)
        assert model.encoder.blocks[0].norm1.training  # handed over training
        service = StreamingCompressionService(model, ServiceConfig(max_batch=2))
        assert not model.encoder.blocks[0].norm1.training  # eval()ed
        wedges = _wedges(4, (8, 16, 14), seed=2)
        payloads, _stats = service.run(iter(wedges))
        comp = BCAECompressor(model)
        assert comp._fast_encoder() is not None
        ref = b"".join(comp.compress(w).payload for w in wedges)
        assert b"".join(bytes(p.payload) for p in payloads) == ref

        dec = DecompressionService(model, ServiceConfig(max_batch=2))
        batches = [comp.compress(w) for w in wedges]
        recons, _stats = dec.run(batches)
        np.testing.assert_array_equal(
            np.concatenate(recons),
            np.concatenate([comp.decompress(c) for c in batches]),
        )
