"""Encoder model sizes vs the paper's Table 1 / Figure 6E."""

import pytest

from repro.core import BCAEEncoder2D, build_model

#: (paper value, tolerated relative deviation) — deviations documented in
#: DESIGN.md §2 (the paper does not restate every per-layer hyper-parameter).
_PAPER_ENCODER_SIZES = {
    "bcae_2d": (169_000, 0.08),
    "bcae_pp": (226_200, 0.05),
    "bcae_ht": (9_800, 0.20),
    "bcae": (201_700, 0.15),
}


class TestEncoderSizes:
    @pytest.mark.parametrize("name", sorted(_PAPER_ENCODER_SIZES))
    def test_encoder_size_near_paper(self, name):
        model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)
        paper, tol = _PAPER_ENCODER_SIZES[name]
        ours = model.encoder_parameters()
        assert abs(ours - paper) / paper < tol, f"{name}: {ours} vs paper {paper}"

    def test_size_ordering_matches_table1(self):
        """pp > bcae > 2d >> ht — the ordering every conclusion rests on."""

        sizes = {
            n: build_model(n, wedge_spatial=(16, 192, 249), seed=0).encoder_parameters()
            for n in _PAPER_ENCODER_SIZES
        }
        assert sizes["bcae_pp"] > sizes["bcae"] > sizes["bcae_2d"] > sizes["bcae_ht"]

    def test_fig6e_ladder(self):
        """Figure 6E encoder sizes for m = 3..7 (paper: 132.9k → 277.4k)."""

        paper_ladder = {3: 132_900, 4: 169_000, 5: 205_200, 6: 241_300, 7: 277_400}
        for m, paper in paper_ladder.items():
            ours = BCAEEncoder2D(m=m, d=3).num_parameters()
            assert abs(ours - paper) / paper < 0.08, f"m={m}: {ours} vs {paper}"

    def test_encoder_size_independent_of_input_size(self):
        """Convolutional encoders have geometry-independent parameter counts."""

        a = build_model("bcae_pp", wedge_spatial=(16, 192, 249), seed=0)
        b = build_model("bcae_pp", wedge_spatial=(16, 48, 64), seed=0)
        assert a.encoder_parameters() == b.encoder_parameters()
