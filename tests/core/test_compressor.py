"""BCAECompressor: ratios (§3.1), payload format, round trips."""

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.io import load_compressed, save_compressed


@pytest.fixture(scope="module")
def small_model():
    return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)


@pytest.fixture(scope="module")
def raw_wedges(small_model):
    rng = np.random.default_rng(0)
    w = rng.integers(0, 1024, size=(3, 16, 24, 30)).astype(np.uint16)
    w[w < 600] = 0
    return w


class TestCompressionRatio:
    def test_paper_ratio_new_variants(self):
        """§3.1: 31.125 for BCAE-2D / BCAE++ / BCAE-HT on the paper wedge."""

        for name in ("bcae_2d", "bcae_pp", "bcae_ht"):
            model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)
            ratio = BCAECompressor(model).compression_ratio((16, 192, 249))
            assert ratio == pytest.approx(31.125), name

    def test_paper_ratio_original(self):
        """§3.1: 27.041 for the original BCAE."""

        model = build_model("bcae", wedge_spatial=(16, 192, 249), seed=0)
        ratio = BCAECompressor(model).compression_ratio((16, 192, 249))
        assert ratio == pytest.approx(27.041, abs=1e-3)


class TestRoundTrip:
    def test_payload_is_fp16(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        expected = raw_wedges.shape[0] * int(np.prod(c.code_shape)) * 2
        assert c.nbytes == expected
        assert c.codes().dtype == np.float16

    def test_decompress_shape_clips_padding(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        recon, c = comp.roundtrip(raw_wedges)
        assert recon.shape == raw_wedges.shape  # horizontal 30, not padded 32

    def test_single_wedge_accepted(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges[0])
        assert c.n_wedges == 1

    def test_deterministic_payload(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        assert comp.compress(raw_wedges).payload == comp.compress(raw_wedges).payload

    def test_half_and_full_modes_close(self, small_model, raw_wedges):
        """Table 2: half-precision inference ≈ full-precision inference.

        Compared on the raw head outputs — the masked reconstruction of an
        *untrained* model is dominated by mask flips at seg ≈ 0.5, which is
        a thresholding artifact, not a precision one.  (The trained-model
        parity check lives in tests/train/test_trainer.py.)
        """

        from repro import nn
        from repro.nn import Tensor
        from repro.tpc import log_transform, pad_horizontal

        x = Tensor(pad_horizontal(log_transform(raw_wedges), 32))
        small_model.eval()
        with nn.no_grad():
            full = small_model(x)
            with nn.amp.autocast(True):
                half = small_model(x)
        denom = max(float(np.abs(full.reg.data).max()), 1.0)
        assert float(np.abs(full.reg.data - half.reg.data).max()) / denom < 0.02
        # The untrained seg head has O(10²) logits, so voxels near the
        # sigmoid zero-crossing shift visibly under fp16; parity is asserted
        # at the distribution level (mean and 99th percentile).
        seg_diff = np.abs(full.seg.data - half.seg.data)
        assert float(seg_diff.mean()) < 0.01
        assert float(np.quantile(seg_diff, 0.99)) < 0.12

    def test_decompress_adc_is_integer_10bit(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        adc = comp.decompress_adc(comp.compress(raw_wedges))
        assert adc.dtype == np.uint16
        assert adc.max() <= 1023

    def test_3d_model_roundtrip(self, raw_wedges):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        recon, c = BCAECompressor(model).roundtrip(raw_wedges)
        assert recon.shape == raw_wedges.shape


class TestCodesMutability:
    def test_codes_returns_writable_copy(self, small_model, raw_wedges):
        """Regression: codes() used to return a read-only frombuffer view —
        callers mutating codes got a ValueError."""

        c = BCAECompressor(small_model).compress(raw_wedges)
        arr = c.codes()
        arr *= 0.5  # must not raise
        arr[0] = 0
        # The payload itself must be untouched by edits to the copy.
        assert c.codes_view().any()

    def test_codes_view_is_readonly_and_zero_copy(self, small_model, raw_wedges):
        c = BCAECompressor(small_model).compress(raw_wedges)
        view = c.codes_view()
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 1
        np.testing.assert_array_equal(view, c.codes())


class TestAnalyticRatio:
    def test_ratio_runs_no_forward_pass(self):
        """compression_ratio must be pure geometry — no encoder execution."""

        for name in ("bcae_2d", "bcae_pp", "bcae_ht", "bcae"):
            model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)

            def boom(*_a, **_k):
                raise AssertionError("encoder must not run")

            model.encoder.forward = boom
            model.encode = boom
            ratio = BCAECompressor(model).compression_ratio((16, 192, 249))
            expected = 27.041 if name == "bcae" else 31.125
            assert ratio == pytest.approx(expected, abs=1e-3), name

    def test_code_shape_matches_actual_compression(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        analytic = comp.code_shape_for(raw_wedges.shape[1:])
        assert tuple(comp.compress(raw_wedges).code_shape) == analytic

    def test_3d_incompatible_spatial_rejected(self):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        comp = BCAECompressor(model)
        with pytest.raises(ValueError):
            comp.code_shape_for((16, 48, 30))


class TestServingPath:
    """compress_into / compress_stream: the allocation-free hot path."""

    def test_compress_into_matches_compress(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        assert comp.compress_into(raw_wedges).payload == comp.compress(raw_wedges).payload

    def test_compress_into_3d_fallback(self, raw_wedges):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        comp = BCAECompressor(model)
        assert comp.compress_into(raw_wedges).payload == comp.compress(raw_wedges).payload

    def test_batch_invariance(self, small_model, raw_wedges):
        """Payload bytes must not depend on how wedges are batched."""

        comp = BCAECompressor(small_model)
        singles = b"".join(comp.compress(w).payload for w in raw_wedges)
        assert comp.compress(raw_wedges).payload == singles
        assert comp.compress_into(raw_wedges).payload == singles

    def test_compress_into_out_buffer(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        ref = comp.compress(raw_wedges)
        out = bytearray(ref.nbytes)
        c = comp.compress_into(raw_wedges, out=out)
        assert bytes(out) == ref.payload
        assert c.payload.obj is out  # aliases the caller's buffer

    def test_compress_into_oversized_out_buffer(self, small_model, raw_wedges):
        """A larger ring buffer must still yield a correctly-sized payload
        and a working codes()/decompress round trip."""

        comp = BCAECompressor(small_model)
        ref = comp.compress(raw_wedges)
        out = bytearray(ref.nbytes + 64)
        c = comp.compress_into(raw_wedges, out=out)
        assert c.nbytes == ref.nbytes
        assert bytes(c.payload) == ref.payload
        np.testing.assert_array_equal(c.codes_view(), ref.codes_view())
        np.testing.assert_array_equal(comp.decompress(c), comp.decompress(ref))

    def test_fast_path_tracks_weight_updates(self, small_model, raw_wedges):
        """Regression: the compiled fast path must not serve stale weights
        after an (in-place) parameter update."""

        comp = BCAECompressor(small_model)
        before = comp.compress_into(raw_wedges).payload
        try:
            for p in small_model.encoder.parameters():
                p.data *= 1.01
            after = comp.compress_into(raw_wedges).payload
            assert after == comp.compress(raw_wedges).payload
            assert after != before
        finally:
            for p in small_model.encoder.parameters():
                p.data /= 1.01

    def test_compress_stream_chunks_and_order(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        ref = b"".join(comp.compress(w).payload for w in raw_wedges)
        chunks = list(comp.compress_stream(iter(raw_wedges), batch_size=2))
        assert [c.n_wedges for c in chunks] == [2, 1]
        assert b"".join(bytes(c.payload) for c in chunks) == ref

    def test_compress_stream_rejects_bad_input(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        with pytest.raises(ValueError):
            list(comp.compress_stream(iter(raw_wedges), batch_size=0))
        with pytest.raises(ValueError):
            list(comp.compress_stream([raw_wedges], batch_size=2))  # 4-dim item

    def test_repeated_calls_reuse_scratch(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        first = comp.compress_into(raw_wedges).payload
        second = comp.compress_into(raw_wedges).payload
        assert first == second


class TestDecompressServingPath:
    """decompress_into / decompress_stream: the analysis hot path."""

    def test_decompress_into_matches_decompress(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        np.testing.assert_array_equal(
            comp.decompress(c), np.asarray(comp.decompress_into(c))
        )

    def test_decompress_into_3d_fallback(self, raw_wedges):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        comp = BCAECompressor(model)
        c = comp.compress(raw_wedges)
        np.testing.assert_array_equal(
            comp.decompress(c), np.asarray(comp.decompress_into(c))
        )

    def test_decompress_into_out_buffer(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        ref = comp.decompress(c)
        out = np.empty(ref.shape, dtype=np.float32)
        result = comp.decompress_into(c, out=out)
        assert result is out  # aliases the caller's buffer
        np.testing.assert_array_equal(out, ref)

    def test_repeated_calls_reuse_workspace(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        first = comp.decompress_into(c)
        ref = np.array(first)
        second = comp.decompress_into(c)
        assert np.shares_memory(first, second)  # documented reuse: copy first
        np.testing.assert_array_equal(np.asarray(second), ref)

    def test_fast_decode_tracks_weight_updates(self, small_model, raw_wedges):
        """The compiled decoder must not serve stale weights after an
        in-place parameter update (mirrors the encoder fingerprint test)."""

        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        before = np.array(comp.decompress_into(c))
        params = [
            *small_model.seg_decoder.parameters(),
            *small_model.reg_decoder.parameters(),
        ]
        try:
            for p in params:
                p.data *= 1.01
            after = np.array(comp.decompress_into(c))
            np.testing.assert_array_equal(after, comp.decompress(c))
            assert not np.array_equal(after, before)
        finally:
            for p in params:
                p.data /= 1.01

    def test_fast_decode_tracks_threshold_updates(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        original = small_model.threshold
        try:
            small_model.threshold = 0.05
            np.testing.assert_array_equal(
                np.asarray(comp.decompress_into(c)), comp.decompress(c)
            )
        finally:
            small_model.threshold = original

    def test_decode_batch_invariance(self, small_model, raw_wedges):
        """Reconstruction bytes must not depend on batch composition —
        the decode-side twin of payload batch invariance, through the
        Upsample2d + decoder ResBlock2d stacks and both decode paths."""

        comp = BCAECompressor(small_model)
        singles = [comp.compress(w) for w in raw_wedges]
        batch = comp.compress(raw_wedges)
        ref = np.concatenate([comp.decompress(c) for c in singles])
        np.testing.assert_array_equal(comp.decompress(batch), ref)
        # np.array, not np.asarray: decompress_into returns a reused
        # workspace view — accumulating requires a copy (documented).
        fast = np.concatenate([np.array(comp.decompress_into(c)) for c in singles])
        np.testing.assert_array_equal(fast, ref)
        np.testing.assert_array_equal(np.asarray(comp.decompress_into(batch)), ref)

    def test_decompress_stream_yields_owned_copies(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        batches = [comp.compress(raw_wedges[:2]), comp.compress(raw_wedges[2:])]
        recons = list(comp.decompress_stream(batches))
        assert len(recons) == 2
        assert not np.shares_memory(recons[0], recons[1])
        np.testing.assert_array_equal(
            np.concatenate(recons), comp.decompress(comp.compress(raw_wedges))
        )


class TestRoundTripZoo:
    """Compress→decompress across the model zoo, including a horizontal
    size that is not a multiple of 8 (exercises pad/unpad end to end)."""

    @pytest.mark.parametrize("name,kwargs", [
        ("bcae_2d", dict(m=2, n=2, d=2)),
        ("bcae_pp", {}),
        ("bcae_ht", {}),
        ("bcae", {}),
    ])
    def test_roundtrip_non_multiple_of_8(self, name, kwargs):
        spatial = (16, 24, 27)  # 27 → padded to 32 inside the pipeline
        rng = np.random.default_rng(11)
        w = rng.integers(0, 1024, size=(2,) + spatial).astype(np.uint16)
        w[w < 700] = 0
        model = build_model(name, wedge_spatial=spatial, seed=0, **kwargs)
        comp = BCAECompressor(model)
        recon, c = comp.roundtrip(w)
        assert recon.shape == w.shape
        assert np.isfinite(recon).all()
        adc = comp.decompress_adc(c)
        assert adc.shape == w.shape and adc.dtype == np.uint16


class TestArchiveIO:
    def test_save_load(self, small_model, raw_wedges, tmp_path):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        path = save_compressed(c, tmp_path / "codes.npz", model_name="bcae_2d")
        loaded, name = load_compressed(path)
        assert name == "bcae_2d"
        assert loaded.payload == c.payload
        assert loaded.code_shape == c.code_shape
        np.testing.assert_array_equal(
            comp.decompress(loaded), comp.decompress(c)
        )
