"""BCAECompressor: ratios (§3.1), payload format, round trips."""

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.io import load_compressed, save_compressed


@pytest.fixture(scope="module")
def small_model():
    return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)


@pytest.fixture(scope="module")
def raw_wedges(small_model):
    rng = np.random.default_rng(0)
    w = rng.integers(0, 1024, size=(3, 16, 24, 30)).astype(np.uint16)
    w[w < 600] = 0
    return w


class TestCompressionRatio:
    def test_paper_ratio_new_variants(self):
        """§3.1: 31.125 for BCAE-2D / BCAE++ / BCAE-HT on the paper wedge."""

        for name in ("bcae_2d", "bcae_pp", "bcae_ht"):
            model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)
            ratio = BCAECompressor(model).compression_ratio((16, 192, 249))
            assert ratio == pytest.approx(31.125), name

    def test_paper_ratio_original(self):
        """§3.1: 27.041 for the original BCAE."""

        model = build_model("bcae", wedge_spatial=(16, 192, 249), seed=0)
        ratio = BCAECompressor(model).compression_ratio((16, 192, 249))
        assert ratio == pytest.approx(27.041, abs=1e-3)


class TestRoundTrip:
    def test_payload_is_fp16(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        expected = raw_wedges.shape[0] * int(np.prod(c.code_shape)) * 2
        assert c.nbytes == expected
        assert c.codes().dtype == np.float16

    def test_decompress_shape_clips_padding(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        recon, c = comp.roundtrip(raw_wedges)
        assert recon.shape == raw_wedges.shape  # horizontal 30, not padded 32

    def test_single_wedge_accepted(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges[0])
        assert c.n_wedges == 1

    def test_deterministic_payload(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        assert comp.compress(raw_wedges).payload == comp.compress(raw_wedges).payload

    def test_half_and_full_modes_close(self, small_model, raw_wedges):
        """Table 2: half-precision inference ≈ full-precision inference.

        Compared on the raw head outputs — the masked reconstruction of an
        *untrained* model is dominated by mask flips at seg ≈ 0.5, which is
        a thresholding artifact, not a precision one.  (The trained-model
        parity check lives in tests/train/test_trainer.py.)
        """

        from repro import nn
        from repro.nn import Tensor
        from repro.tpc import log_transform, pad_horizontal

        x = Tensor(pad_horizontal(log_transform(raw_wedges), 32))
        small_model.eval()
        with nn.no_grad():
            full = small_model(x)
            with nn.amp.autocast(True):
                half = small_model(x)
        denom = max(float(np.abs(full.reg.data).max()), 1.0)
        assert float(np.abs(full.reg.data - half.reg.data).max()) / denom < 0.02
        # The untrained seg head has O(10²) logits, so voxels near the
        # sigmoid zero-crossing shift visibly under fp16; parity is asserted
        # at the distribution level (mean and 99th percentile).
        seg_diff = np.abs(full.seg.data - half.seg.data)
        assert float(seg_diff.mean()) < 0.01
        assert float(np.quantile(seg_diff, 0.99)) < 0.12

    def test_decompress_adc_is_integer_10bit(self, small_model, raw_wedges):
        comp = BCAECompressor(small_model)
        adc = comp.decompress_adc(comp.compress(raw_wedges))
        assert adc.dtype == np.uint16
        assert adc.max() <= 1023

    def test_3d_model_roundtrip(self, raw_wedges):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        recon, c = BCAECompressor(model).roundtrip(raw_wedges)
        assert recon.shape == raw_wedges.shape


class TestArchiveIO:
    def test_save_load(self, small_model, raw_wedges, tmp_path):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges)
        path = save_compressed(c, tmp_path / "codes.npz", model_name="bcae_2d")
        loaded, name = load_compressed(path)
        assert name == "bcae_2d"
        assert loaded.payload == c.payload
        assert loaded.code_shape == c.code_shape
        np.testing.assert_array_equal(
            comp.decompress(loaded), comp.decompress(c)
        )
