"""3D BCAE variants: stage planning, code shapes, decoder inversion."""

import numpy as np
import pytest

from repro.core import (
    BCAEDecoder3D,
    BCAEEncoder3D,
    build_bcae,
    build_bcae_ht,
    build_bcae_pp,
    plan_stages,
)
from repro.nn import Tensor


class TestStagePlanning:
    def test_padded_paper_plan(self):
        """BCAE++: (16, 192, 256) → code spatial (16, 12, 16) (§2.3)."""

        plans = plan_stages((16, 192, 256), 4, legacy_tail=False)
        assert plans[-1].out_spatial == (16, 12, 16)
        for p in plans:
            assert p.kernel == (3, 4, 4)
            assert p.stride == (1, 2, 2)

    def test_legacy_paper_plan(self):
        """Original BCAE: unpadded (16, 192, 249) → (16, 13, 17)."""

        plans = plan_stages((16, 192, 249), 4, legacy_tail=True)
        assert plans[-1].out_spatial == (16, 13, 17)

    def test_radial_never_downsampled(self):
        for legacy in (False, True):
            for p in plan_stages((16, 192, 256), 4, legacy):
                assert p.out_spatial[0] == p.in_spatial[0]

    def test_output_padding_inverts_sizes(self):
        """(out-1)·s - pads + k + op must reproduce in_spatial exactly."""

        for legacy in (False, True):
            for p in plan_stages((16, 192, 249), 4, legacy):
                recovered = tuple(
                    (o - 1) * s - pl - ph + k + op
                    for o, s, (pl, ph), k, op in zip(
                        p.out_spatial, p.stride, p.padding, p.kernel, p.output_padding
                    )
                )
                assert recovered == p.in_spatial

    def test_too_small_input_raises(self):
        with pytest.raises(ValueError):
            plan_stages((16, 4, 4), 4)


class TestEncoders3D:
    def test_bcae_pp_code_shape(self):
        """Paper §3.1: BCAE++ code is (8, 16, 12, 16) = 24576 elements."""

        enc = BCAEEncoder3D(spatial=(16, 192, 256))
        assert enc.code_shape == (8, 16, 12, 16)
        assert int(np.prod(enc.code_shape)) == 24576

    def test_bcae_legacy_code_shape(self):
        """Original BCAE code holds 8·16·13·17 = 28288 elements (ratio 27.041)."""

        enc = BCAEEncoder3D(spatial=(16, 192, 249), legacy_tail=True, norm=True)
        assert int(np.prod(enc.code_shape)) == 28288

    def test_forward_small(self, rng):
        enc = BCAEEncoder3D(spatial=(16, 32, 32), features=(2, 4, 4, 8))
        out = enc(Tensor(rng.normal(size=(2, 16, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 8, 16, 2, 2)

    def test_rejects_wrong_rank(self, rng):
        enc = BCAEEncoder3D(spatial=(16, 32, 32))
        with pytest.raises(ValueError):
            enc(Tensor(rng.normal(size=(16, 32, 32)).astype(np.float32)))


class TestDecoders3D:
    @pytest.mark.parametrize("legacy", [False, True])
    def test_decoder_restores_input_spatial(self, rng, legacy):
        spatial = (16, 24, 27 if legacy else 32)
        enc = BCAEEncoder3D(spatial=spatial, features=(2, 4, 4, 8), legacy_tail=legacy)
        dec = BCAEDecoder3D(enc)
        x = Tensor(rng.normal(size=(1,) + spatial).astype(np.float32))
        code = enc(x)
        out = dec(code)
        assert out.shape == (1,) + spatial

    def test_output_activation_applied(self, rng):
        from repro import nn

        enc = BCAEEncoder3D(spatial=(16, 16, 16), features=(2, 2, 2, 2))
        dec = BCAEDecoder3D(enc, output_activation=nn.Sigmoid())
        out = dec(enc(Tensor(rng.normal(size=(1, 16, 16, 16)).astype(np.float32))))
        assert out.data.min() >= 0.0 and out.data.max() <= 1.0


class TestVariantBuilders:
    def test_pp_and_ht_share_code_shape(self):
        pp = build_bcae_pp((16, 192, 249))
        ht = build_bcae_ht((16, 192, 249))
        assert pp.encoder.code_shape == ht.encoder.code_shape == (8, 16, 12, 16)

    def test_ht_is_5pct_of_pp(self):
        """Paper §2.3: the HT encoder shrinks to ~5% of BCAE++'s size."""

        pp = build_bcae_pp((16, 192, 249)).encoder_parameters()
        ht = build_bcae_ht((16, 192, 249)).encoder_parameters()
        assert ht / pp < 0.06

    def test_bcae_has_norm_layers(self):
        from repro import nn

        model = build_bcae((16, 192, 249))
        kinds = [type(m) for m in model.encoder.modules()]
        assert nn.BatchNorm3d in kinds

    def test_pp_has_no_norm_layers(self):
        """§2.3: BCAE++ removes all normalization layers."""

        from repro import nn

        model = build_bcae_pp((16, 192, 249))
        kinds = [type(m) for m in model.encoder.modules()]
        assert nn.BatchNorm3d not in kinds

    def test_reg_head_uses_output_transform(self):
        from repro import nn

        model = build_bcae_pp((16, 192, 249))
        assert isinstance(model.reg_decoder.output_activation, nn.RegOutputTransform)
        assert isinstance(model.seg_decoder.output_activation, nn.Sigmoid)

    def test_small_wedge_roundtrip(self, rng):
        model = build_bcae_ht((16, 24, 30))
        x = Tensor(rng.normal(size=(1, 16, 24, 32)).astype(np.float32))
        out = model(x)
        assert out.seg.shape == (1, 16, 24, 32)
        assert out.reg.data.min() >= 6.0  # RegOutputTransform floor
