"""FastEncoder2D: bit-identity with the module path, workspace reuse."""

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.core.fast_encode import (
    FastEncoder2D,
    FastEncoder3D,
    make_fast_encoder,
    supports_fast_encode,
)
from repro.tpc.transforms import log_transform, padded_length


def _wedges(n, spatial, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.integers(0, 1024, size=(n,) + spatial).astype(np.uint16)
    w[w < 500] = 0
    return w


def _payload(model, fe, wedges):
    target = padded_length(wedges.shape[-1], 2 ** model.encoder.d)
    return fe.encode(log_transform(wedges), horizontal_target=target).tobytes()


class TestSupports:
    def test_2d_supported(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        assert supports_fast_encode(model)

    def test_3d_variants_supported(self):
        """BCAE++/HT compile through the 3D stage kinds (ROADMAP follow-on)."""

        for name in ("bcae_ht", "bcae_pp"):
            model = build_model(name, wedge_spatial=(16, 24, 30), seed=0)
            assert supports_fast_encode(model)

    def test_batchnorm_bcae_supported_in_eval(self):
        """The original BCAE's BatchNorm compiles in eval mode only:
        training-mode statistics are batch-dependent, not a fixed graph."""

        model = build_model("bcae", wedge_spatial=(16, 24, 30), seed=0)
        assert not supports_fast_encode(model)  # training mode
        model.eval()
        assert supports_fast_encode(model)
        model.train()
        assert not supports_fast_encode(model)

    def test_compile_rejects_unsupported(self):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        with pytest.raises(TypeError):
            FastEncoder2D(model.encoder)  # 3D encoders need FastEncoder3D


class TestBitIdentity:
    """The core contract: fast bytes == module-path bytes, always."""

    @pytest.mark.parametrize("half", [True, False])
    @pytest.mark.parametrize("mkw,spatial", [
        (dict(m=2, n=2, d=2), (16, 24, 30)),
        (dict(m=4, n=3, d=3), (16, 24, 32)),
        (dict(m=3, n=2, d=1), (16, 24, 30)),
    ])
    def test_matches_module_path(self, mkw, spatial, half):
        model = build_model("bcae_2d", wedge_spatial=spatial, seed=0, **mkw)
        fe = FastEncoder2D(model.encoder, half=half)
        comp = BCAECompressor(model, half=half)
        for b in (1, 3, 8):
            w = _wedges(b, spatial, seed=b)
            assert _payload(model, fe, w) == comp.compress(w).payload

    def test_non_multiple_of_8_horizontal(self):
        """249-style padding (§2.3) exercised through the fast path."""

        spatial = (16, 48, 41)
        model = build_model("bcae_2d", wedge_spatial=spatial, seed=0, m=3, n=3, d=3)
        fe = FastEncoder2D(model.encoder, half=True)
        comp = BCAECompressor(model)
        w = _wedges(2, spatial)
        assert _payload(model, fe, w) == comp.compress(w).payload

    def test_no_pool_encoder(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=1, n=1, d=0, seed=0)
        fe = FastEncoder2D(model.encoder, half=True)
        comp = BCAECompressor(model)
        w = _wedges(2, (16, 24, 30))
        assert _payload(model, fe, w) == comp.compress(w).payload

    @pytest.mark.parametrize("scale", [40.0, 400.0])
    def test_fp16_saturation_paths(self, scale):
        """Huge weights push activations past ±65504: the elided clip must
        re-engage and still match quantize_fp16's saturate-then-cast."""

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        for p in model.encoder.parameters():
            p.data *= scale
        fe = FastEncoder2D(model.encoder, half=True)
        comp = BCAECompressor(model)
        w = _wedges(3, (16, 24, 30))
        assert _payload(model, fe, w) == comp.compress(w).payload

    def test_batch_size_change_reuses_instance(self):
        """One instance must serve varying micro-batch sizes correctly."""

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        fe = FastEncoder2D(model.encoder, half=True)
        comp = BCAECompressor(model)
        for b in (4, 1, 7, 4):
            w = _wedges(b, (16, 24, 30), seed=b)
            assert _payload(model, fe, w) == comp.compress(w).payload


class TestWorkspace:
    def test_buffers_are_reused(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        fe = FastEncoder2D(model.encoder, half=True)
        w = log_transform(_wedges(4, (16, 24, 30)))
        fe.encode(w, horizontal_target=32)
        footprint = fe.workspace_bytes
        assert footprint > 0
        fe.encode(w, horizontal_target=32)
        assert fe.workspace_bytes == footprint  # steady state: no growth

    def test_output_buffer_is_reused(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        fe = FastEncoder2D(model.encoder, half=True)
        w = log_transform(_wedges(2, (16, 24, 30)))
        a = fe.encode(w, horizontal_target=32)
        b = fe.encode(w, horizontal_target=32)
        assert a is b  # documented: copy before the next call


class TestBitIdentity3D:
    """FastEncoder3D: fast payload bytes == module-path bytes for BCAE++/HT."""

    @pytest.mark.parametrize("half", [True, False])
    @pytest.mark.parametrize("name", ["bcae_ht", "bcae_pp"])
    def test_matches_module_path(self, name, half):
        spatial = (8, 24, 30)
        model = build_model(name, wedge_spatial=spatial, seed=0)
        fe = make_fast_encoder(model, half=half)
        assert isinstance(fe, FastEncoder3D)
        comp = BCAECompressor(model, half=half)
        target = model.encoder.spatial[-1]
        for b in (1, 3, 5):
            w = _wedges(b, spatial, seed=b)
            got = fe.encode(log_transform(w), horizontal_target=target).tobytes()
            assert got == comp.compress(w).payload

    def test_batch_size_change_reuses_instance(self):
        spatial = (8, 24, 30)
        model = build_model("bcae_ht", wedge_spatial=spatial, seed=0)
        fe = FastEncoder3D(model.encoder, half=True)
        comp = BCAECompressor(model)
        target = model.encoder.spatial[-1]
        for b in (4, 1, 6, 4):
            w = _wedges(b, spatial, seed=b)
            got = fe.encode(log_transform(w), horizontal_target=target).tobytes()
            assert got == comp.compress(w).payload

    def test_workspace_steady_state(self):
        spatial = (8, 24, 30)
        model = build_model("bcae_ht", wedge_spatial=spatial, seed=0)
        fe = FastEncoder3D(model.encoder, half=True)
        w = log_transform(_wedges(3, spatial))
        fe.encode(w, horizontal_target=32)
        footprint = fe.workspace_bytes
        assert footprint > 0
        fe.encode(w, horizontal_target=32)
        assert fe.workspace_bytes == footprint  # steady state: no growth
