"""Architecture search harness (paper §2.3/§3.5 workflow)."""

import numpy as np
import pytest

from repro.core import (
    enumerate_candidates,
    pareto_front,
    search,
    throughput_frontier,
)


@pytest.fixture(scope="module")
def grid():
    cands = enumerate_candidates(ms=(3, 4, 5), ns=(3, 8), ds=(3,))
    return throughput_frontier(cands)


class TestEnumeration:
    def test_paper_grid_size(self):
        cands = enumerate_candidates(ms=(3, 4, 5, 6, 7), ns=(3, 5, 7, 9, 11), ds=(3,))
        assert len(cands) == 25  # the §3.5 grid

    def test_ratio_is_structural(self):
        cands = enumerate_candidates(ms=(4,), ns=(8,), ds=(3,))
        assert cands[0].code_ratio == pytest.approx(31.125)

    def test_infeasible_d_filtered(self):
        cands = enumerate_candidates(ms=(2,), ns=(2,), ds=(3,))
        assert cands == []

    def test_encoder_params_grow_with_m(self):
        cands = enumerate_candidates(ms=(3, 4, 5), ns=(3,), ds=(3,))
        params = [c.encoder_params for c in cands]
        assert params == sorted(params)

    def test_n_does_not_change_encoder(self):
        cands = enumerate_candidates(ms=(4,), ns=(3, 11), ds=(3,))
        assert cands[0].encoder_params == cands[1].encoder_params


class TestThroughput:
    def test_attached_to_all(self, grid):
        assert all(c.throughput is not None for c in grid)

    def test_shared_across_n(self, grid):
        by_mn = {(c.m, c.n): c.throughput for c in grid}
        assert by_mn[(4, 3)] == by_mn[(4, 8)]  # n is decoder-only

    def test_deeper_encoder_slower(self, grid):
        by_m = {c.m: c.throughput for c in grid if c.n == 3}
        assert by_m[3] > by_m[4] > by_m[5]


class TestPareto:
    def test_front_is_nondominated(self, grid):
        front = pareto_front(grid)
        assert front
        for c in front:
            for o in grid:
                assert not (
                    o.encoder_params < c.encoder_params and o.throughput > c.throughput
                )

    def test_front_sorted_by_params(self, grid):
        front = pareto_front(grid)
        params = [c.encoder_params for c in front]
        assert params == sorted(params)

    def test_requires_throughput(self):
        cands = enumerate_candidates(ms=(3,), ns=(3,), ds=(3,))
        with pytest.raises(ValueError):
            pareto_front(cands)


class TestSearchRanking:
    def test_throughput_only_ranking(self, grid):
        ranked = search(list(grid))
        tputs = [c.throughput for c in ranked]
        assert tputs == sorted(tputs, reverse=True)

    def test_accuracy_callback_used(self, grid):
        # Fake accuracy: deeper decoders strictly better (Figure 7 direction).
        ranked = search(list(grid), evaluate=lambda c: 1.0 / c.n, accuracy_weight=10.0)
        assert ranked[0].n == max(c.n for c in grid)

    def test_scores_populated(self, grid):
        ranked = search(list(grid))
        assert all(c.score is not None for c in ranked)

    def test_row_format(self, grid):
        assert "BCAE-2D(m=" in grid[0].row()
