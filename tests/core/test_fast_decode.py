"""FastDecoder2D: bit-identity with the module path, plan vocabulary, reuse."""

import numpy as np
import pytest

from repro import nn
from repro.core import BCAECompressor, build_model
from repro.core.blocks import ResBlock2d
from repro.core.fast_decode import (
    FastDecoder2D,
    FastDecoder3D,
    make_fast_decoder,
    supports_fast_decode,
)
from repro.core.fast_plan import CompiledStagePlan, stage_kinds
from repro.nn import Tensor


def _wedges(n, spatial, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.integers(0, 1024, size=(n,) + spatial).astype(np.uint16)
    w[w < 500] = 0
    return w


def _module_decode(model, codes, half):
    with nn.no_grad(), nn.amp.autocast(half):
        seg, reg = model.decode(Tensor(codes.astype(np.float32)))
    return seg.data, reg.data


class TestVocabulary:
    def test_decoder_stages_classified(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 32), m=2, n=3, d=2, seed=0)
        kinds = stage_kinds(model.seg_decoder.stages)
        assert kinds is not None
        assert kinds[-1] == "sigmoid" and kinds[-2] == "conv"
        assert "up" in kinds and "res" in kinds
        assert stage_kinds(model.reg_decoder.stages)[-1] == "identity"

    def test_trailing_res_rejected(self):
        """A plan ending in a res block would return quantized values where
        the module returns the unquantized stream — must not compile."""

        stages = nn.Sequential(nn.Conv2d(4, 4, 3, padding=1), ResBlock2d(4))
        assert stage_kinds(stages) is None
        with pytest.raises(TypeError):
            CompiledStagePlan(stages)

    def test_mid_stack_sigmoid_rejected(self):
        stages = nn.Sequential(
            nn.Conv2d(4, 4, 1), nn.Sigmoid(), nn.Conv2d(4, 4, 1)
        )
        assert stage_kinds(stages) is None

    def test_sigmoid_requires_conv_upstream(self):
        stages = nn.Sequential(nn.Upsample2d(2), nn.Sigmoid())
        assert stage_kinds(stages) is None

    def test_unknown_stage_rejected(self):
        stages = nn.Sequential(nn.Conv2d(4, 4, 1), nn.Tanh())
        assert stage_kinds(stages) is None


class TestSupports:
    def test_2d_supported(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        assert supports_fast_decode(model)

    def test_3d_variants_supported(self):
        """BCAE++/HT decoders compile through the 3D stage kinds."""

        for name in ("bcae_ht", "bcae_pp"):
            model = build_model(name, wedge_spatial=(16, 24, 30), seed=0)
            assert supports_fast_decode(model)

    def test_batchnorm_bcae_supported_in_eval(self):
        """The original BCAE's BatchNorm compiles in eval mode only:
        training-mode statistics are batch-dependent, not a fixed graph."""

        model = build_model("bcae", wedge_spatial=(16, 24, 30), seed=0)
        assert not supports_fast_decode(model)  # training mode
        model.eval()
        assert supports_fast_decode(model)
        model.train()
        assert not supports_fast_decode(model)

    def test_compile_rejects_unsupported(self):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        with pytest.raises(TypeError):
            FastDecoder2D(model)  # 3D decoders need FastDecoder3D


class TestBitIdentity:
    """The core contract: fast reconstruction values == module-path values."""

    @pytest.mark.parametrize("half", [True, False])
    @pytest.mark.parametrize("mkw,spatial", [
        (dict(m=2, n=2, d=2), (16, 24, 30)),
        (dict(m=4, n=3, d=3), (16, 24, 32)),
        (dict(m=3, n=2, d=1), (16, 24, 30)),
    ])
    def test_matches_module_path(self, mkw, spatial, half):
        model = build_model("bcae_2d", wedge_spatial=spatial, seed=0, **mkw)
        comp = BCAECompressor(model, half=half)
        fd = FastDecoder2D(model, half=half)
        for b in (1, 3, 8):
            c = comp.compress(_wedges(b, spatial, seed=b))
            ref = comp.decompress(c)
            fast = fd.decompress(c.codes_view(), c.original_horizontal)
            assert np.array_equal(ref, np.asarray(fast))

    @pytest.mark.parametrize("half", [True, False])
    def test_head_outputs_match(self, half):
        """decode() reproduces both raw head outputs, not just the combine."""

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 32), m=2, n=3, d=2, seed=0)
        comp = BCAECompressor(model, half=half)
        fd = FastDecoder2D(model, half=half)
        c = comp.compress(_wedges(4, (16, 24, 32)))
        seg_ref, reg_ref = _module_decode(model, c.codes_view(), half)
        seg, reg = fd.decode(c.codes_view())
        assert np.array_equal(seg_ref, np.asarray(seg))
        assert np.array_equal(reg_ref, np.asarray(reg))

    def test_no_upsample_decoder(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=1, n=1, d=0, seed=0)
        comp = BCAECompressor(model)
        fd = FastDecoder2D(model)
        c = comp.compress(_wedges(2, (16, 24, 30)))
        assert np.array_equal(
            comp.decompress(c),
            np.asarray(fd.decompress(c.codes_view(), c.original_horizontal)),
        )

    @pytest.mark.parametrize("scale", [40.0, 400.0])
    def test_fp16_saturation_paths(self, scale):
        """Huge weights push activations past ±65504: the elided clip must
        re-engage and still match quantize_fp16's saturate-then-cast."""

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        params = [*model.seg_decoder.parameters(), *model.reg_decoder.parameters()]
        for p in params:
            p.data *= scale
        try:
            comp = BCAECompressor(model)
            fd = FastDecoder2D(model)
            c = comp.compress(_wedges(3, (16, 24, 30)))
            assert np.array_equal(
                comp.decompress(c),
                np.asarray(fd.decompress(c.codes_view(), c.original_horizontal)),
            )
        finally:
            for p in params:
                p.data /= scale

    def test_nonstandard_threshold(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        model.threshold = 0.31
        comp = BCAECompressor(model)
        fd = FastDecoder2D(model)
        c = comp.compress(_wedges(2, (16, 24, 30)))
        assert np.array_equal(
            comp.decompress(c),
            np.asarray(fd.decompress(c.codes_view(), c.original_horizontal)),
        )

    def test_batch_size_change_reuses_instance(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        comp = BCAECompressor(model)
        fd = FastDecoder2D(model)
        for b in (4, 1, 7, 4):
            c = comp.compress(_wedges(b, (16, 24, 30), seed=b))
            assert np.array_equal(
                comp.decompress(c),
                np.asarray(fd.decompress(c.codes_view(), c.original_horizontal)),
            )


class TestWorkspace:
    def test_buffers_are_reused(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        comp = BCAECompressor(model)
        fd = FastDecoder2D(model)
        c = comp.compress(_wedges(4, (16, 24, 30)))
        fd.decompress(c.codes_view(), c.original_horizontal)
        footprint = fd.workspace_bytes
        assert footprint > 0
        fd.decompress(c.codes_view(), c.original_horizontal)
        assert fd.workspace_bytes == footprint  # steady state: no growth

    def test_output_buffer_is_reused(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        comp = BCAECompressor(model)
        fd = FastDecoder2D(model)
        c = comp.compress(_wedges(2, (16, 24, 30)))
        a = fd.decompress(c.codes_view(), c.original_horizontal)
        b = fd.decompress(c.codes_view(), c.original_horizontal)
        assert np.shares_memory(a, b)  # documented: copy before the next call

    def test_heads_share_one_workspace(self):
        """The two structurally identical head plans reuse one buffer set —
        the decode footprint must stay well under two independent plans."""

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        comp = BCAECompressor(model)
        fd = FastDecoder2D(model)
        c = comp.compress(_wedges(2, (16, 24, 30)))
        fd.decompress(c.codes_view(), c.original_horizontal)
        shared = fd.workspace_bytes
        assert shared < 2 * _single_head_bytes(model, c.codes_view())


class TestBitIdentity3D:
    """FastDecoder3D: fast reconstruction values == module-path values."""

    @pytest.mark.parametrize("half", [True, False])
    @pytest.mark.parametrize("name", ["bcae_ht", "bcae_pp"])
    def test_matches_module_path(self, name, half):
        spatial = (8, 24, 30)
        model = build_model(name, wedge_spatial=spatial, seed=0)
        comp = BCAECompressor(model, half=half)
        fd = make_fast_decoder(model, half=half)
        assert isinstance(fd, FastDecoder3D)
        for b in (1, 3):
            c = comp.compress(_wedges(b, spatial, seed=b))
            ref = comp.decompress(c)
            codes = c.codes_view().astype(np.float32)
            fast = fd.decompress(codes, c.original_horizontal)
            assert np.array_equal(ref, np.asarray(fast))

    @pytest.mark.parametrize("half", [True, False])
    def test_head_outputs_match(self, half):
        """decode() reproduces both raw head outputs (sigmoid + regout)."""

        spatial = (8, 24, 30)
        model = build_model("bcae_ht", wedge_spatial=spatial, seed=0)
        comp = BCAECompressor(model, half=half)
        fd = FastDecoder3D(model, half=half)
        c = comp.compress(_wedges(2, spatial))
        codes = c.codes_view().astype(np.float32)
        seg_ref, reg_ref = _module_decode(model, codes, half)
        seg, reg = fd.decode(codes)
        assert np.array_equal(seg_ref, np.asarray(seg))
        assert np.array_equal(reg_ref, np.asarray(reg))

    def test_batch_size_change_reuses_instance(self):
        spatial = (8, 24, 30)
        model = build_model("bcae_pp", wedge_spatial=spatial, seed=0)
        comp = BCAECompressor(model)
        fd = FastDecoder3D(model)
        for b in (3, 1, 4, 3):
            c = comp.compress(_wedges(b, spatial, seed=b))
            codes = c.codes_view().astype(np.float32)
            assert np.array_equal(
                comp.decompress(c),
                np.asarray(fd.decompress(codes, c.original_horizontal)),
            )

    def test_heads_share_one_workspace(self):
        spatial = (8, 24, 30)
        model = build_model("bcae_ht", wedge_spatial=spatial, seed=0)
        comp = BCAECompressor(model)
        fd = FastDecoder3D(model)
        c = comp.compress(_wedges(2, spatial))
        codes = c.codes_view().astype(np.float32)
        fd.decompress(codes, c.original_horizontal)
        footprint = fd.workspace_bytes
        assert footprint > 0
        fd.decompress(codes, c.original_horizontal)
        assert fd.workspace_bytes == footprint  # steady state: no growth


def _single_head_bytes(model, codes) -> int:
    plan = CompiledStagePlan(model.seg_decoder.stages)
    n, ch, a, h = codes.shape
    canvas, interior = plan.input_canvas(n, ch, (a, h))
    np.copyto(interior, codes.transpose(1, 0, 2, 3))
    plan.run(canvas, (a, h), 65504.0)
    return plan.workspace_bytes
