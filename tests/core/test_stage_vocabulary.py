"""Edge cases of the stage-vocabulary guards and the fold record contract.

``stage_kinds`` / ``entry_kinds_ok`` are the only gate between a model and
the compiled fast path; these tests pin their boundary behavior — empty
sequences, training-mode BatchNorm rejection, entry-placement rules — and
the ``bn_folds`` explainability contract (every decision carries a
non-empty reason) across all four Table-1 zoo models.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import MODEL_NAMES, build_model
from repro.core.fast_decode import make_fast_decoder, supports_fast_decode
from repro.core.fast_encode import make_fast_encoder, supports_fast_encode
from repro.core.fast_plan import (
    CONV_ENTRY_KINDS,
    DECODE_ENTRY_KINDS,
    CompiledStagePlan,
    entry_kinds_ok,
    stage_kinds,
)
from repro.nn.norm import BatchNorm2d


def _model(name):
    kwargs = {"m": 2, "n": 2, "d": 2} if name == "bcae_2d" else {}
    model = build_model(name, wedge_spatial=(8, 16, 14), seed=0, **kwargs)
    model.eval()
    return model


class TestStageKindsEdges:
    def test_empty_sequence_classifies_but_fails_entry(self):
        """An empty stage list has no returnable output: ``stage_kinds``
        rejects it, and ``entry_kinds_ok`` rejects the None."""

        assert stage_kinds([]) is None
        assert entry_kinds_ok(stage_kinds([]), {"conv"}) is False
        assert entry_kinds_ok(None, {"conv"}) is False

    def test_identity_only_sequence_rejected(self):
        """All-identity bodies have no functional output stage."""

        assert stage_kinds([nn.Identity(), nn.Identity()]) is None
        assert entry_kinds_ok(["identity", "identity"], {"identity"}) is False

    def test_empty_kinds_list_rejected_by_entry_rule(self):
        assert entry_kinds_ok([], set()) is False
        assert entry_kinds_ok([], {"conv"}, entry=DECODE_ENTRY_KINDS) is False

    def test_unknown_stage_rejected(self):
        class Exotic:
            pass

        assert stage_kinds([Exotic()]) is None

    def test_training_mode_batchnorm_rejected(self):
        """Training-mode BN depends on batch statistics — not a fixed
        graph; the sequence must stay on the module path until eval()."""

        bn = BatchNorm2d(3)
        conv = nn.Conv2d(3, 4, kernel_size=3, padding=1)
        bn.train()
        assert stage_kinds([bn, conv]) is None
        bn.eval()
        kinds = stage_kinds([bn, conv])
        assert kinds == ["bnorm", "conv"]
        # ... but a leading bnorm still never compiles through a wrapper
        # (the entry snap would quantize what the module normalizes raw).
        assert entry_kinds_ok(kinds, {"bnorm", "conv"}) is False
        assert entry_kinds_ok(kinds, {"bnorm", "conv"},
                              entry=DECODE_ENTRY_KINDS) is False

    def test_non_fp32_batchnorm_rejected(self):
        bn = BatchNorm2d(3)
        bn.eval()
        bn.set_buffer("running_mean",
                      np.zeros(3, dtype=np.float64))
        conv = nn.Conv2d(3, 4, kernel_size=3, padding=1)
        assert stage_kinds([bn, conv]) is None

    def test_compiled_plan_guards_with_stage_kinds(self):
        with pytest.raises(TypeError, match="vocabulary"):
            CompiledStagePlan([])

    def test_entry_kind_sets_are_consistent(self):
        """Decode entries are a superset: the decode entry prep (a clip of
        grid values) is exact for pools/upsamples too."""

        assert CONV_ENTRY_KINDS < DECODE_ENTRY_KINDS
        assert {"pool", "pool3d", "up", "up3d"} <= DECODE_ENTRY_KINDS
        assert "bnorm" not in DECODE_ENTRY_KINDS


class TestBnFoldRecordContract:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_every_fold_decision_has_a_reason(self, name):
        """Explainability contract: every ``bn_folds`` entry across the
        whole zoo carries a non-empty reason string and the full record
        schema (the static plan verifier surfaces these verbatim)."""

        model = _model(name)
        assert supports_fast_encode(model) and supports_fast_decode(model)
        enc = make_fast_encoder(model)
        dec = make_fast_decoder(model)
        folds = enc.bn_folds + dec.bn_folds
        if name == "bcae":
            assert folds, "the original BCAE must record BN decisions"
        else:
            assert folds == [], f"{name} has no BatchNorm to decide on"
        for entry in folds:
            assert {"stage", "site", "folded", "reason"} <= set(entry)
            assert isinstance(entry["reason"], str) and entry["reason"].strip()
            assert isinstance(entry["folded"], bool)
