"""Property-based tests of the core models and compressor (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core import BCAE2D, BCAECompressor, build_model
from repro.nn import Tensor

_SETTINGS = dict(max_examples=10, deadline=None)


@pytest.fixture(scope="module")
def tiny_model():
    return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)


class TestModelProperties:
    @settings(**_SETTINGS)
    @given(
        m=st.integers(1, 5),
        extra_n=st.integers(0, 4),
        d=st.integers(1, 2),
    )
    def test_any_mnd_roundtrips_shapes(self, m, extra_n, d):
        """Every BCAE-2D(m, n, d) with n ≥ d, m ≥ d round-trips shapes."""

        if d > m:
            return
        n = d + extra_n
        nn.init.seed(0)
        model = BCAE2D(m=m, n=n, d=d)
        x = Tensor(np.zeros((1, 16, 8 * 2**d, 8 * 2**d), dtype=np.float32))
        with nn.no_grad():
            out = model(x)
        assert out.seg.shape == x.shape
        assert out.reg.shape == x.shape
        assert out.code.shape[1] == 32

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_seg_outputs_are_probabilities(self, seed, tiny_model):
        x = Tensor(
            np.random.default_rng(seed).uniform(0, 10, size=(1, 16, 24, 32)).astype(np.float32)
        )
        with nn.no_grad():
            out = tiny_model(x)
        assert out.seg.data.min() >= 0.0
        assert out.seg.data.max() <= 1.0

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1), threshold=st.floats(0.1, 0.9))
    def test_reconstruction_support_matches_mask(self, seed, threshold, tiny_model):
        """ṽ is nonzero exactly where the mask fires and v̂ ≠ 0."""

        x = Tensor(
            np.random.default_rng(seed).uniform(0, 10, size=(1, 16, 24, 32)).astype(np.float32)
        )
        with nn.no_grad():
            out = tiny_model(x)
        recon = out.reconstruction(threshold)
        mask = out.seg.data > threshold
        assert np.all(recon[~mask] == 0.0)

    @settings(**_SETTINGS)
    @given(scale=st.floats(0.1, 10.0))
    def test_encoder_deterministic(self, scale, tiny_model):
        x = Tensor(np.full((1, 16, 24, 32), scale, dtype=np.float32))
        with nn.no_grad():
            a = tiny_model.encode(x).data
            b = tiny_model.encode(x).data
        np.testing.assert_array_equal(a, b)


class TestCompressorProperties:
    @settings(**_SETTINGS)
    @given(
        seed=st.integers(0, 2**31 - 1),
        batch=st.integers(1, 3),
    )
    def test_roundtrip_shape_for_any_batch(self, seed, batch, tiny_model):
        comp = BCAECompressor(tiny_model)
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, 1024, size=(batch, 16, 24, 30)).astype(np.uint16)
        raw[raw < 700] = 0
        recon, compressed = comp.roundtrip(raw)
        assert recon.shape == raw.shape
        assert compressed.n_wedges == batch
        assert compressed.nbytes == batch * int(np.prod(compressed.code_shape)) * 2

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_payload_codes_roundtrip_bitexact(self, seed, tiny_model):
        """bytes → fp16 array → bytes is the identity."""

        comp = BCAECompressor(tiny_model)
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, 1024, size=(2, 16, 24, 30)).astype(np.uint16)
        compressed = comp.compress(raw)
        assert compressed.codes().tobytes() == compressed.payload

    def test_compression_ratio_independent_of_content(self, tiny_model):
        """The ratio is structural — a property the paper relies on (§3.1)."""

        comp = BCAECompressor(tiny_model)
        assert comp.compression_ratio((16, 24, 30)) == comp.compression_ratio((16, 24, 30))


class TestBatchInvariance:
    """Payload → reconstruction bytes must not depend on batch composition.

    The encoder-side property (payload invariance) is pinned in
    test_compressor.py; these extend it through the decoder stacks —
    Upsample2d + decoder ResBlock2d chains — and the compiled fast-decode
    path, across random (n, d) decoder architectures.
    """

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(0, 2**31 - 1),
        extra_n=st.integers(0, 2),
        d=st.integers(0, 2),
        batch=st.integers(2, 4),
    )
    def test_decode_invariant_over_batch_composition(self, seed, extra_n, d, batch):
        nn.init.seed(7)
        model = BCAE2D(m=max(d, 1), n=max(d + extra_n, 1), d=d)
        comp = BCAECompressor(model)
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, 1024, size=(batch, 16, 16, 16)).astype(np.uint16)
        raw[raw < 600] = 0
        singles = [comp.compress(w) for w in raw]
        ref = np.concatenate([comp.decompress(c) for c in singles])
        batched = comp.compress(raw)
        # Module path, batched == singles...
        np.testing.assert_array_equal(comp.decompress(batched), ref)
        # ...and the compiled fast path, batched and single-wedge.
        np.testing.assert_array_equal(np.asarray(comp.decompress_into(batched)), ref)
        # np.array copies: decompress_into returns a reused workspace view.
        fast_singles = np.concatenate(
            [np.array(comp.decompress_into(c)) for c in singles]
        )
        np.testing.assert_array_equal(fast_singles, ref)


class TestBatchInvariance3D:
    """The 3D fast paths inherit the batch-composition contract.

    BCAE++/HT now compile through the same stage-plan engine (conv3d /
    convtranspose3d / residual-block stage kinds), so payload bytes and
    reconstruction values must be invariant to how wedges are batched —
    through ``compress_into`` / ``decompress_into`` and the archive round
    trip, in both precision modes.
    """

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        batch=st.integers(2, 3),
        name=st.sampled_from(["bcae_ht", "bcae_pp", "bcae"]),
        half=st.booleans(),
    )
    def test_3d_fast_paths_invariant_over_batch_composition(
        self, seed, batch, name, half
    ):
        model = build_model(name, wedge_spatial=(8, 16, 14), seed=3)
        # eval(): the original BCAE's BatchNorm must run from running
        # statistics for payloads to be batch-composition-free at all.
        model.eval()
        comp = BCAECompressor(model, half=half)
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, 1024, size=(batch, 8, 16, 14)).astype(np.uint16)
        raw[raw < 600] = 0
        # Module path, one wedge at a time — the reference composition.
        singles = [comp.compress(w) for w in raw]
        ref = np.concatenate([comp.decompress(c) for c in singles])
        # Fast encode: batched payload bytes == concatenated single bytes.
        batched = comp.compress_into(raw)
        assert bytes(batched.payload) == b"".join(c.payload for c in singles)
        # Fast decode, batched and single-wedge, == module reference.
        np.testing.assert_array_equal(
            np.asarray(comp.decompress_into(batched)), ref
        )
        fast_singles = np.concatenate(
            [np.array(comp.decompress_into(c)) for c in singles]
        )
        np.testing.assert_array_equal(fast_singles, ref)

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), half=st.booleans())
    def test_3d_archive_roundtrip_bitexact(self, seed, half, tmp_path_factory):
        """compress_into → io.codes archive → decompress_into, bit for bit."""

        from repro.io.codes import load_compressed, save_compressed

        model = build_model("bcae_ht", wedge_spatial=(8, 16, 14), seed=3)
        comp = BCAECompressor(model, half=half)
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, 1024, size=(2, 8, 16, 14)).astype(np.uint16)
        raw[raw < 600] = 0
        compressed = comp.compress_into(raw)
        path = tmp_path_factory.mktemp("arch") / "codes.npz"
        save_compressed(compressed, path, model_name="bcae_ht")
        loaded, name = load_compressed(path)
        assert name == "bcae_ht"
        assert bytes(loaded.payload) == bytes(compressed.payload)
        np.testing.assert_array_equal(
            np.asarray(comp.decompress_into(loaded)), comp.decompress(loaded)
        )


class TestNoFallback3D:
    """Regression: **no model** takes the module-graph fallback.

    Since the BatchNorm fold/affine stages landed, every zoo variant — the
    original BCAE included — must route ``compress_into`` /
    ``decompress_into`` through the compiled stage-plan engine once the
    model is in eval mode.  Training-mode BatchNorm is the one legitimate
    fallback left (batch statistics are not a compilable graph).
    """

    @pytest.mark.parametrize("name", ["bcae_ht", "bcae_pp", "bcae", "bcae_2d"])
    def test_compress_and_decompress_take_fast_path(self, name):
        kwargs = dict(m=2, n=2, d=2) if name == "bcae_2d" else {}
        model = build_model(name, wedge_spatial=(8, 16, 14), seed=0, **kwargs)
        model.eval()
        comp = BCAECompressor(model)
        raw = np.zeros((1, 8, 16, 14), dtype=np.uint16)
        comp.compress_into(raw)
        assert comp._fast is not None, f"{name} compress_into fell back"
        comp.decompress_into(comp.compress(raw))
        assert comp._fast_dec is not None, f"{name} decompress_into fell back"

    def test_training_mode_batchnorm_falls_back(self):
        """Training-mode BN depends on batch statistics — module path only,
        and the compiled path re-engages after ``eval()``."""

        model = build_model("bcae", wedge_spatial=(8, 16, 14), seed=0)
        comp = BCAECompressor(model)
        raw = np.zeros((1, 8, 16, 14), dtype=np.uint16)
        comp.compress_into(raw)
        comp.decompress_into(comp.compress(raw))
        assert comp._fast is None and comp._fast_dec is None
        model.eval()
        comp.compress_into(raw)
        comp.decompress_into(comp.compress(raw))
        assert comp._fast is not None and comp._fast_dec is not None


class TestFailureModes:
    def test_wrong_wedge_rank_raises(self, tiny_model):
        comp = BCAECompressor(tiny_model)
        with pytest.raises(Exception):
            comp.compress(np.zeros((2, 2), dtype=np.uint16))

    def test_truncated_payload_fails_loudly(self, tiny_model):
        comp = BCAECompressor(tiny_model)
        raw = np.zeros((1, 16, 24, 30), dtype=np.uint16)
        compressed = comp.compress(raw)
        import dataclasses

        corrupted = dataclasses.replace(compressed, payload=compressed.payload[:-8])
        with pytest.raises(ValueError):
            comp.decompress(corrupted)

    def test_unknown_model_name(self):
        with pytest.raises(ValueError):
            build_model("bcae_xxl")
