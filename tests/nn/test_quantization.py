"""Post-training INT8 quantization (paper §4 future-work extension)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.quantization import (
    INT8_LEVELS,
    calibrate_int8,
    int8_forward,
    quantize_weights_int8,
)


@pytest.fixture()
def encoder_and_data(rng):
    nn.init.seed(3)
    encoder = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1),
        nn.LeakyReLU(),
        nn.Conv2d(8, 8, 3, padding=1),
        nn.LeakyReLU(),
        nn.Conv2d(8, 4, 1),
    )
    data = rng.normal(size=(4, 4, 12, 12)).astype(np.float32)
    return encoder, data


class TestCalibration:
    def test_finds_all_convs(self, encoder_and_data):
        encoder, data = encoder_and_data
        result = calibrate_int8(encoder, data)
        assert result.n_layers == 3

    def test_per_channel_weight_scales(self, encoder_and_data):
        encoder, data = encoder_and_data
        result = calibrate_int8(encoder, data)
        _module, spec = result.specs[0]
        assert spec.weight_scales.shape == (8,)

    def test_activation_scale_covers_data(self, encoder_and_data):
        encoder, data = encoder_and_data
        result = calibrate_int8(encoder, data)
        _module, first = result.specs[0]
        assert first.activation_scale * INT8_LEVELS >= np.abs(data).max() * 0.999

    def test_describe(self, encoder_and_data):
        encoder, data = encoder_and_data
        result = calibrate_int8(encoder, data)
        assert "int8 quantization: 3 conv layers" in result.describe()

    def test_tracer_restored(self, encoder_and_data):
        encoder, data = encoder_and_data
        calibrate_int8(encoder, data)
        assert nn.Module._tracer is None


class TestQuantizedInference:
    def test_weights_land_on_grid(self, encoder_and_data):
        encoder, data = encoder_and_data
        result = calibrate_int8(encoder, data)
        quantize_weights_int8(encoder, result)
        _module, spec = result.specs[0]
        w = encoder[0].weight.data
        scales = spec.weight_scales.reshape(-1, 1, 1, 1)
        steps = w / scales
        np.testing.assert_allclose(steps, np.rint(steps), atol=1e-4)

    def test_w8a8_output_close_to_fp32(self, encoder_and_data):
        """The extension's claim: int8 costs little accuracy after fp16."""

        encoder, data = encoder_and_data
        with nn.no_grad():
            ref = encoder(Tensor(data)).data.copy()
        result = calibrate_int8(encoder, data)
        quantize_weights_int8(encoder, result)
        out = int8_forward(encoder, data, result)
        scale = max(np.abs(ref).max(), 1e-6)
        assert np.abs(out - ref).max() / scale < 0.1

    def test_int8_forward_deterministic(self, encoder_and_data):
        encoder, data = encoder_and_data
        result = calibrate_int8(encoder, data)
        quantize_weights_int8(encoder, result)
        a = int8_forward(encoder, data, result)
        b = int8_forward(encoder, data, result)
        np.testing.assert_array_equal(a, b)

    def test_forward_wrappers_removed(self, encoder_and_data):
        encoder, data = encoder_and_data
        result = calibrate_int8(encoder, data)
        int8_forward(encoder, data, result)
        assert nn.Module._tracer is None
        assert "forward" not in encoder[0].__dict__  # wrapper uninstalled


class TestOnBCAE:
    def test_bcae2d_encoder_int8(self, rng):
        from repro.core import build_model
        from repro.tpc import log_transform, pad_horizontal

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        raw = rng.integers(0, 1024, size=(2, 16, 24, 30)).astype(np.uint16)
        raw[raw < 600] = 0
        x = pad_horizontal(log_transform(raw), 32)

        with nn.no_grad():
            ref = model.encode(Tensor(x)).data.copy()
        result = calibrate_int8(model.encoder, x)
        quantize_weights_int8(model.encoder, result)
        out = int8_forward(model.encoder, x, result)
        assert out.shape == ref.shape
        scale = max(np.abs(ref).max(), 1e-6)
        assert np.abs(out - ref).max() / scale < 0.15
