"""Layer modules: shapes, gradients, parameter registration."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.gradcheck import check_gradients


class TestConvLayers:
    def test_conv2d_shape(self, rng):
        layer = nn.Conv2d(3, 8, 4, stride=2, padding=1)
        out = layer(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 8, 8, 8)

    def test_conv3d_radial_preserving(self, rng):
        """The BCAE stage kernel (3,4,4)/s(1,2,2)/p1 keeps the radial size."""

        layer = nn.Conv3d(1, 8, (3, 4, 4), stride=(1, 2, 2), padding=1)
        out = layer(Tensor(rng.normal(size=(1, 1, 16, 24, 32))))
        assert out.shape == (1, 8, 16, 12, 16)

    def test_conv_output_shape_helper(self):
        layer = nn.Conv2d(3, 8, 4, stride=2, padding=1)
        assert layer.output_shape((16, 16)) == (8, 8)

    def test_conv_no_bias(self):
        layer = nn.Conv2d(2, 2, 3, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 2 * 2 * 9

    def test_convtranspose2d_shape_output_padding(self, rng):
        layer = nn.ConvTranspose2d(4, 2, 4, stride=2, padding=1, output_padding=1)
        out = layer(Tensor(rng.normal(size=(1, 4, 5, 5))))
        assert out.shape == (1, 2, 11, 11)

    def test_convtranspose_inverts_conv_shape(self, rng):
        conv = nn.Conv2d(1, 4, 4, stride=2, padding=1)
        deconv = nn.ConvTranspose2d(4, 1, 4, stride=2, padding=1)
        x = Tensor(rng.normal(size=(1, 1, 12, 20)))
        assert deconv(conv(x)).shape == x.shape

    def test_conv_gradients_flow_to_all_parameters(self, rng):
        layer = nn.Conv2d(2, 3, 3, padding=1)
        out = layer(Tensor(rng.normal(size=(1, 2, 5, 5))))
        (out * out).mean().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_conv3d_gradcheck_strided(self, rng):
        def fn(inputs):
            x, w, b = inputs
            layer = nn.Conv3d(2, 2, (3, 4, 4), stride=(1, 2, 2), padding=1)
            layer.weight = w
            layer.bias = b
            return (layer(x) ** 2).mean()

        check_gradients(
            fn,
            [
                Tensor(rng.normal(size=(1, 2, 4, 6, 8))),
                Tensor(rng.normal(size=(2, 2, 3, 4, 4))),
                Tensor(rng.normal(size=(2,))),
            ],
        )

    def test_convtranspose3d_gradcheck(self, rng):
        def fn(inputs):
            x, w = inputs
            layer = nn.ConvTranspose3d(
                2, 2, (3, 4, 4), stride=(1, 2, 2), padding=1, bias=False
            )
            layer.weight = w
            return (layer(x) ** 2).mean()

        check_gradients(
            fn,
            [
                Tensor(rng.normal(size=(1, 2, 3, 3, 4))),
                Tensor(rng.normal(size=(2, 2, 3, 4, 4))),
            ],
        )


class TestLinear:
    def test_shape_and_grad(self, rng):
        layer = nn.Linear(6, 4)
        out = layer(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 4)
        out.sum().backward()
        assert layer.weight.grad.shape == (4, 6)
        assert layer.bias.grad.shape == (4,)

    def test_gradcheck(self, rng):
        def fn(inputs):
            x, w, b = inputs
            layer = nn.Linear(4, 3)
            layer.weight = w
            layer.bias = b
            return (layer(x) ** 2).mean()

        check_gradients(
            fn,
            [
                Tensor(rng.normal(size=(2, 4))),
                Tensor(rng.normal(size=(3, 4))),
                Tensor(rng.normal(size=(3,))),
            ],
        )


class TestPooling:
    def test_avgpool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = nn.AvgPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool3d_shape(self, rng):
        out = nn.AvgPool3d(2)(Tensor(rng.normal(size=(1, 2, 4, 6, 8))))
        assert out.shape == (1, 2, 2, 3, 4)

    def test_avgpool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            nn.AvgPool2d(2)(Tensor(rng.normal(size=(1, 1, 5, 4))))

    def test_avgpool_grad_uniform(self):
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32), requires_grad=True)
        nn.AvgPool2d(2)(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))


class TestUpsample:
    def test_nearest_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32))
        out = nn.Upsample2d(2)(x)
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]],
        )

    def test_upsample_then_pool_is_identity(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 5)))
        out = nn.AvgPool2d(2)(nn.Upsample2d(2)(x))
        np.testing.assert_allclose(out.data, x.data, rtol=1e-6)

    def test_grad_sums_blocks(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
        nn.Upsample2d(2)(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 4.0))


class TestFlatten:
    def test_shape(self, rng):
        out = nn.Flatten()(Tensor(rng.normal(size=(2, 3, 4, 5))))
        assert out.shape == (2, 60)
