"""AdamW / SGD and the paper's LR schedules (§2.5)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter, Tensor


def _quadratic_step(opt_cls, **kwargs):
    """Minimize (w - 3)^2 for a few steps; return the trajectory."""

    w = Parameter(np.array([0.0], dtype=np.float32))
    opt = opt_cls([w], **kwargs)
    traj = []
    for _ in range(50):
        loss = ((w - 3.0) * (w - 3.0)).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        traj.append(float(w.data[0]))
    return traj


class TestAdamW:
    def test_converges_on_quadratic(self):
        traj = _quadratic_step(nn.AdamW, lr=0.2, weight_decay=0.0)
        # Adam oscillates near the optimum; the trend must point at w*=3.
        assert abs(traj[-1] - 3.0) < 0.25
        assert abs(traj[-1] - 3.0) < abs(traj[5] - 3.0)

    def test_weight_decay_is_decoupled(self):
        """With zero gradient, AdamW shrinks weights multiplicatively."""

        w = Parameter(np.array([10.0], dtype=np.float32))
        opt = nn.AdamW([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert w.data[0] == pytest.approx(10.0 * (1 - 0.1 * 0.5), rel=1e-6)

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.AdamW([w], lr=0.1, weight_decay=0.0)
        opt.step()  # no grad set
        assert w.data[0] == pytest.approx(1.0)

    def test_first_step_magnitude_is_lr(self):
        """Adam's bias correction makes the first update ≈ lr·sign(grad)."""

        w = Parameter(np.array([0.0], dtype=np.float32))
        opt = nn.AdamW([w], lr=0.01, weight_decay=0.0)
        w.grad = np.array([5.0], dtype=np.float32)
        opt.step()
        assert w.data[0] == pytest.approx(-0.01, rel=1e-3)

    def test_paper_defaults(self):
        opt = nn.AdamW([Parameter(np.zeros(1, dtype=np.float32))])
        assert (opt.beta1, opt.beta2) == (0.9, 0.999)
        assert opt.weight_decay == pytest.approx(0.01)

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            nn.AdamW([])


class TestSGD:
    def test_converges(self):
        traj = _quadratic_step(nn.SGD, lr=0.1)
        assert abs(traj[-1] - 3.0) < 1e-3

    def test_momentum_accelerates(self):
        plain = _quadratic_step(nn.SGD, lr=0.01)
        mom = _quadratic_step(nn.SGD, lr=0.01, momentum=0.9)
        assert abs(mom[10] - 3.0) < abs(plain[10] - 3.0)


class TestSchedules:
    def test_3d_schedule_constant_then_decay(self):
        """BCAE++/HT: constant 100 epochs, ×0.95 every 20 (paper §2.5)."""

        sched = nn.paper_schedule_3d()
        assert sched.lr(0) == pytest.approx(1e-3)
        assert sched.lr(99) == pytest.approx(1e-3)
        assert sched.lr(100) == pytest.approx(1e-3 * 0.95)
        assert sched.lr(119) == pytest.approx(1e-3 * 0.95)
        assert sched.lr(120) == pytest.approx(1e-3 * 0.95**2)
        assert sched.lr(999) == pytest.approx(1e-3 * 0.95 ** ((999 - 100) // 20 + 1))

    def test_2d_schedule(self):
        """BCAE-2D: constant 50 epochs, ×0.95 every 10 (paper §2.5)."""

        sched = nn.paper_schedule_2d()
        assert sched.lr(49) == pytest.approx(1e-3)
        assert sched.lr(50) == pytest.approx(1e-3 * 0.95)
        assert sched.lr(499) == pytest.approx(1e-3 * 0.95 ** ((499 - 50) // 10 + 1))

    def test_apply_sets_optimizer_lr(self):
        opt = nn.SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)
        sched = nn.ConstantThenStepDecay(1e-3, 2, 1, 0.5)
        sched.apply(opt, 4)
        assert opt.lr == pytest.approx(1e-3 * 0.5**3)
