"""Module registration, state dicts, serialization, norm layers, amp."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter, Tensor
from repro.nn.amp import autocast, is_half, quantize_fp16


class TestModuleRegistration:
    def test_parameters_discovered_recursively(self):
        model = nn.Sequential(nn.Conv2d(1, 2, 3), nn.ReLU(), nn.Conv2d(2, 1, 3))
        names = [n for n, _ in model.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_num_parameters(self):
        conv = nn.Conv2d(2, 4, 3)
        assert conv.num_parameters() == 2 * 4 * 9 + 4

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.BatchNorm2d(2), nn.ReLU())
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_zero_grad(self, rng):
        conv = nn.Conv2d(1, 1, 3)
        out = conv(Tensor(rng.normal(size=(1, 1, 5, 5))))
        out.sum().backward()
        assert conv.weight.grad is not None
        conv.zero_grad()
        assert conv.weight.grad is None

    def test_modulelist(self):
        ml = nn.ModuleList([nn.ReLU(), nn.Sigmoid()])
        assert len(ml) == 2
        with pytest.raises(RuntimeError):
            ml(Tensor([1.0]))


class TestStateDict:
    def test_roundtrip(self, rng):
        a = nn.Sequential(nn.Conv2d(1, 2, 3), nn.BatchNorm2d(2))
        b = nn.Sequential(nn.Conv2d(1, 2, 3), nn.BatchNorm2d(2))
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_strict_mismatch_raises(self):
        a = nn.Conv2d(1, 2, 3)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})  # missing bias

    def test_shape_mismatch_raises(self):
        a = nn.Conv2d(1, 2, 3)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_save_load_file(self, tmp_path, rng):
        model = nn.Sequential(nn.Conv2d(1, 2, 3), nn.ReLU())
        path = nn.save_state(model, tmp_path / "m.npz", meta={"epoch": 7})
        clone = nn.Sequential(nn.Conv2d(1, 2, 3), nn.ReLU())
        meta = nn.load_state(clone, path)
        assert meta["epoch"] == 7
        x = Tensor(rng.normal(size=(1, 1, 6, 6)))
        np.testing.assert_array_equal(model(x).data, clone(x).data)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.normal(5.0, 3.0, size=(8, 3, 4, 4)))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, 0.0, atol=1e-4)
        np.testing.assert_allclose(std, 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        bn = nn.BatchNorm2d(2, momentum=1.0)  # full replacement for testability
        x = Tensor(rng.normal(7.0, 1.0, size=(16, 2, 3, 3)))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, 7.0, atol=0.2)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2, momentum=1.0)
        bn(Tensor(rng.normal(3.0, 2.0, size=(16, 2, 4, 4))))  # set stats
        bn.eval()
        x = Tensor(np.full((1, 2, 2, 2), 3.0, dtype=np.float32))
        out = bn(x)
        np.testing.assert_allclose(out.data, 0.0, atol=0.2)


class TestAmp:
    def test_quantize_fp16_grid(self):
        x = np.array([1.0 + 2**-12], dtype=np.float32)  # below fp16 resolution
        q = quantize_fp16(x)
        assert q[0] == np.float32(np.float16(x[0]))

    def test_saturation_no_inf(self):
        q = quantize_fp16(np.array([1e9], dtype=np.float32))
        assert np.isfinite(q[0]) and q[0] == pytest.approx(65504.0)

    def test_autocast_scoping(self):
        assert not is_half()
        with autocast():
            assert is_half()
            with autocast(False):
                assert not is_half()
        assert not is_half()

    def test_half_inference_close_to_full(self, rng):
        """Table 2's premise: fp16 inference ≈ fp32 inference."""

        model = nn.Sequential(nn.Conv2d(4, 8, 3, padding=1), nn.LeakyReLU(),
                              nn.Conv2d(8, 4, 3, padding=1))
        x = Tensor(rng.normal(size=(1, 4, 8, 8)).astype(np.float32))
        with nn.no_grad():
            full = model(x).data
            with autocast():
                half = model(x).data
        assert np.max(np.abs(full - half)) < 0.05 * max(np.max(np.abs(full)), 1.0)


class TestActivationModules:
    def test_reg_output_transform_floor(self, rng):
        """T(x) = 6 + 3e^x is always above the zero-suppression edge (§2.2)."""

        t = nn.RegOutputTransform()
        out = t(Tensor(rng.normal(scale=5.0, size=(100,))))
        assert out.data.min() >= 6.0

    def test_reg_output_transform_values(self):
        t = nn.RegOutputTransform()
        out = t(Tensor(np.zeros(1, dtype=np.float32)))
        assert out.item() == pytest.approx(9.0)  # 6 + 3·e^0

    def test_reg_output_transform_no_overflow_fp16(self):
        t = nn.RegOutputTransform()
        out = t(Tensor(np.array([1000.0], dtype=np.float32)))
        assert np.isfinite(quantize_fp16(out.data)).all()

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        assert nn.Identity()(x) is x
