"""Autograd graph mechanics: accumulation, reuse, no_grad, aliasing."""

import numpy as np
import pytest

from repro.nn import Tensor, enable_grad, is_grad_enabled, no_grad


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0  # x used twice
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor([1.5], requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        out = (a * b).sum()
        out.backward()
        # d/dx (2x (x+1)) = 4x + 2
        np.testing.assert_allclose(x.grad, [4 * 1.5 + 2], rtol=1e-6)

    def test_shared_upstream_gradient_no_aliasing(self):
        """Two parents receiving the same upstream array must not alias."""

        x = Tensor(np.ones(3), requires_grad=True)
        y = Tensor(np.ones(3), requires_grad=True)
        z = x + y  # passthrough backward hands the same g to both parents
        w = (z * 1.0).sum()
        w.backward()
        x.grad += 100.0  # mutate one gradient...
        np.testing.assert_allclose(y.grad, np.ones(3))  # ...other unaffected

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y2 = x * 2.0
        y2.backward(np.array([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_interior_grads_freed(self):
        x = Tensor(np.ones(4), requires_grad=True)
        mid = x * 2.0
        out = mid.sum()
        out.backward()
        assert mid.grad is None  # interior gradients are freed
        assert x.grad is not None  # leaves keep theirs

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_nesting_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data  # shares memory

    def test_constant_inputs_produce_no_graph(self):
        x = Tensor([1.0])  # requires_grad False
        y = x * 2.0 + 3.0
        assert not y.requires_grad
        assert y._backward is None


class TestSecondUse:
    def test_two_backwards_from_different_heads(self):
        """Separate graphs over the same leaf accumulate into .grad."""

        x = Tensor([3.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 5.0).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_long_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(100):
            y = y * 1.01
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.01**100], rtol=1e-4)
