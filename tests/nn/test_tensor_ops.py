"""Elementwise/reduction/shape operations of the autograd Tensor."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, cat
from repro.nn.gradcheck import check_gradients


class TestArithmetic:
    def test_add_values(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        out = Tensor(a) + Tensor(b)
        np.testing.assert_allclose(out.data, (a + b).astype(np.float32), rtol=1e-6)

    def test_add_broadcasting(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        out = Tensor(a) + Tensor(b)
        assert out.shape == (3, 4)

    def test_scalar_radd_rsub_rmul(self, rng):
        a = rng.normal(size=(2, 2))
        t = Tensor(a)
        np.testing.assert_allclose((1.0 + t).data, 1 + a.astype(np.float32), rtol=1e-6)
        np.testing.assert_allclose((1.0 - t).data, 1 - a.astype(np.float32), rtol=1e-6)
        np.testing.assert_allclose((2.0 * t).data, 2 * a.astype(np.float32), rtol=1e-6)

    def test_div_and_rdiv(self, rng):
        a = rng.normal(size=(5,)) + 3.0
        t = Tensor(a)
        np.testing.assert_allclose((t / 2.0).data, a.astype(np.float32) / 2, rtol=1e-6)
        np.testing.assert_allclose((6.0 / t).data, 6 / a.astype(np.float32), rtol=1e-5)

    def test_pow_scalar_only(self):
        t = Tensor([2.0, 3.0])
        np.testing.assert_allclose((t**2).data, [4.0, 9.0])
        with pytest.raises(TypeError):
            t ** Tensor([1.0, 2.0])

    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, (a @ b).astype(np.float32), rtol=1e-5)

    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div", "matmul"])
    def test_gradcheck_binary(self, rng, op):
        a = Tensor(rng.normal(size=(3, 3)) + (2.5 if op == "div" else 0.0))
        b = Tensor(rng.normal(size=(3, 3)) + (2.5 if op == "div" else 0.0))

        def fn(inputs):
            x, y = inputs
            out = {
                "add": lambda: x + y,
                "sub": lambda: x - y,
                "mul": lambda: x * y,
                "div": lambda: x / y,
                "matmul": lambda: x @ y,
            }[op]()
            return (out * out).mean()

        check_gradients(fn, [a, b])

    def test_gradcheck_broadcast_add(self, rng):
        a, b = Tensor(rng.normal(size=(4, 3))), Tensor(rng.normal(size=(3,)))

        def fn(inputs):
            x, y = inputs
            return ((x + y) ** 2).mean()

        check_gradients(fn, [a, b])


class TestElementwise:
    @pytest.mark.parametrize(
        "name", ["exp", "log", "sqrt", "abs", "sigmoid", "tanh", "relu"]
    )
    def test_gradcheck_unary(self, rng, name):
        base = rng.normal(size=(4, 4))
        if name in ("log", "sqrt"):
            base = np.abs(base) + 0.5
        t = Tensor(base)

        def fn(inputs):
            (x,) = inputs
            return (getattr(x, name)()).sum()

        check_gradients(fn, [t])

    def test_sigmoid_stability(self):
        out = Tensor([-100.0, 0.0, 100.0]).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-6)

    def test_leaky_relu_slope(self):
        t = Tensor([-2.0, 3.0])
        out = t.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0], rtol=1e-6)

    def test_clip_gradient_mask(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = t.clip(-1.0, 1.0)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_clip_values(self):
        out = Tensor([-2.0, 0.5, 2.0]).clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = rng.normal(size=(2, 3, 4))
        out = Tensor(a).sum(axis=1, keepdims=True)
        np.testing.assert_allclose(out.data, a.astype(np.float32).sum(1, keepdims=True), rtol=1e-5)

    def test_mean_axis(self, rng):
        a = rng.normal(size=(2, 3, 4))
        out = Tensor(a).mean(axis=(0, 2))
        np.testing.assert_allclose(out.data, a.astype(np.float32).mean(axis=(0, 2)), rtol=1e-5)

    def test_gradcheck_mean_axis(self, rng):
        t = Tensor(rng.normal(size=(3, 4)))

        def fn(inputs):
            (x,) = inputs
            return (x.mean(axis=0) ** 2).sum()

        check_gradients(fn, [t])

    def test_var(self, rng):
        a = rng.normal(size=(5, 6))
        out = Tensor(a).var(axis=0)
        np.testing.assert_allclose(out.data, a.astype(np.float32).var(axis=0), rtol=1e-4, atol=1e-6)


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        t = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        out = t.reshape(3, 4).reshape((2, 6))
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 6)))

    def test_transpose(self, rng):
        a = rng.normal(size=(2, 3, 4))
        out = Tensor(a).transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)

    def test_transpose_grad(self, rng):
        t = Tensor(rng.normal(size=(2, 3)))

        def fn(inputs):
            (x,) = inputs
            return (x.transpose() @ x).sum()

        check_gradients(fn, [t])

    def test_getitem_grad_scatter(self):
        t = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        out = t[2:4]
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0, 0, 1, 1, 0, 0])

    def test_pad_and_grad(self, rng):
        t = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = t.pad([(0, 0), (1, 2)])
        assert out.shape == (2, 6)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_cat(self, rng):
        a, b = Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(4, 3)))
        out = cat([a, b], axis=0)
        assert out.shape == (6, 3)

    def test_cat_grad_routing(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        out = cat([a, b], axis=0)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data, rtol=1e-6)
        np.testing.assert_allclose(b.grad, 2 * b.data, rtol=1e-6)


class TestDtypePolicy:
    def test_float64_downcast(self):
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float32

    def test_int_promotion(self):
        assert Tensor(np.zeros(3, dtype=np.int64)).dtype == np.float32

    def test_float16_preserved(self):
        assert Tensor(np.zeros(3, dtype=np.float16)).dtype == np.float16

    def test_as_tensor_identity(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()
