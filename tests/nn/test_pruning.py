"""Magnitude pruning (paper §4 future-work extension)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.pruning import (
    apply_masks,
    prunable_parameters,
    prune_module,
    sparse_flops_factor,
    sparsity_report,
)


@pytest.fixture()
def small_encoder():
    nn.init.seed(0)
    return nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1),
        nn.LeakyReLU(),
        nn.Conv2d(8, 8, 3, padding=1),
        nn.LeakyReLU(),
        nn.Conv2d(8, 4, 1),
    )


class TestPruneModule:
    def test_reaches_target_sparsity(self, small_encoder):
        prune_module(small_encoder, 0.5)
        report = sparsity_report(small_encoder)
        assert report["__global__"] == pytest.approx(0.5, abs=0.05)

    def test_per_layer_sparsity_uniform(self, small_encoder):
        prune_module(small_encoder, 0.4, per_layer=True)
        report = sparsity_report(small_encoder)
        layer_values = [v for k, v in report.items() if k != "__global__"]
        for v in layer_values:
            assert v == pytest.approx(0.4, abs=0.1)

    def test_global_mode_prunes_smallest_anywhere(self, small_encoder):
        # Inflate one layer's weights: global pruning should spare it.
        small_encoder[0].weight.data *= 100.0
        prune_module(small_encoder, 0.5, per_layer=False)
        report = sparsity_report(small_encoder)
        assert report["0.weight"] < 0.1
        assert report["2.weight"] > 0.5

    def test_keeps_largest_magnitudes(self, small_encoder):
        w = small_encoder[0].weight.data.copy()
        masks = prune_module(small_encoder, 0.5)
        kept = small_encoder[0].weight.data != 0
        pruned_max = np.abs(w[~kept]).max() if (~kept).any() else 0.0
        kept_min = np.abs(w[kept]).min()
        assert pruned_max <= kept_min + 1e-12

    def test_zero_amount_is_noop(self, small_encoder):
        before = small_encoder[0].weight.data.copy()
        prune_module(small_encoder, 0.0)
        np.testing.assert_array_equal(small_encoder[0].weight.data, before)

    def test_invalid_amount(self, small_encoder):
        with pytest.raises(ValueError):
            prune_module(small_encoder, 1.0)

    def test_biases_not_prunable(self, small_encoder):
        names = [n for n, _p in prunable_parameters(small_encoder)]
        assert all(n.endswith("weight") for n in names)


class TestFineTuning:
    def test_masks_survive_optimizer_steps(self, small_encoder, rng):
        masks = prune_module(small_encoder, 0.6)
        opt = nn.AdamW(small_encoder.parameters(), lr=1e-2)
        x = Tensor(rng.normal(size=(2, 4, 8, 8)).astype(np.float32))
        for _ in range(3):
            loss = (small_encoder(x) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
            apply_masks(masks)
        report = sparsity_report(small_encoder)
        assert report["__global__"] >= 0.55

    def test_without_reapplication_sparsity_decays(self, small_encoder, rng):
        prune_module(small_encoder, 0.6)
        opt = nn.AdamW(small_encoder.parameters(), lr=1e-2, weight_decay=0.0)
        x = Tensor(rng.normal(size=(2, 4, 8, 8)).astype(np.float32))
        loss = (small_encoder(x) ** 2).mean()
        opt.zero_grad()
        loss.backward()
        opt.step()
        report = sparsity_report(small_encoder)
        assert report["__global__"] < 0.4  # gradients resurrect pruned weights


class TestFlopsFactor:
    def test_matches_density(self, small_encoder):
        prune_module(small_encoder, 0.75)
        assert sparse_flops_factor(small_encoder) == pytest.approx(0.25, abs=0.05)

    def test_on_bcae_encoder(self):
        from repro.core import build_model

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        prune_module(model.encoder, 0.5)
        assert sparse_flops_factor(model.encoder) == pytest.approx(0.5, abs=0.05)

    def test_pruned_encoder_still_runs(self, rng):
        from repro.core import build_model

        model = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)
        prune_module(model.encoder, 0.3)
        out = model.encode(Tensor(rng.normal(size=(1, 16, 24, 32)).astype(np.float32)))
        assert np.isfinite(out.data).all()
