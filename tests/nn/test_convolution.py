"""Convolution primitives: shapes, reference equivalence, adjoint identities."""

import numpy as np
import pytest
import scipy.signal

from repro.nn.convolution import (
    conv_forward,
    conv_input_grad,
    conv_output_shape,
    conv_transpose_output_shape,
    conv_weight_grad,
    normalize_padding,
    normalize_tuple,
)


class TestNormalization:
    def test_normalize_tuple_int(self):
        assert normalize_tuple(3, 2) == (3, 3)

    def test_normalize_tuple_sequence(self):
        assert normalize_tuple((1, 2, 3), 3) == (1, 2, 3)

    def test_normalize_tuple_wrong_length(self):
        with pytest.raises(ValueError):
            normalize_tuple((1, 2), 3)

    def test_normalize_padding_variants(self):
        assert normalize_padding(1, 2) == ((1, 1), (1, 1))
        assert normalize_padding((1, 2), 2) == ((1, 1), (2, 2))
        assert normalize_padding(((0, 1), (2, 3)), 2) == ((0, 1), (2, 3))


class TestOutputShapes:
    @pytest.mark.parametrize(
        "size,k,s,p,expected",
        [
            (249, 4, 2, (1, 1), 124),  # original BCAE horizontal stage 1
            (256, 4, 2, (1, 1), 128),  # BCAE++ padded stage 1
            (24, 3, 2, (2, 2), 13),  # legacy tail azimuthal
            (31, 3, 2, (2, 2), 17),  # legacy tail horizontal
            (16, 3, 1, (1, 1), 16),  # radial passthrough
        ],
    )
    def test_paper_sizes(self, size, k, s, p, expected):
        assert conv_output_shape((size,), (k,), (s,), (p,)) == (expected,)

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            conv_output_shape((2,), (5,), (1,), ((0, 0),))

    def test_transpose_inverts_conv(self):
        # (in - 1)*s - pl - ph + k + op recovers the original size
        out = conv_output_shape((249,), (4,), (2,), ((1, 1),))[0]
        back = conv_transpose_output_shape((out,), (4,), (2,), ((1, 1),), (1,))[0]
        assert back == 249


class TestForwardReference:
    """conv_forward must equal scipy.signal.correlate for stride 1."""

    def test_single_channel_2d(self, rng):
        x = rng.normal(size=(1, 1, 9, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        ours = conv_forward(x, w, (1, 1), 0)
        ref = scipy.signal.correlate(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(ours[0, 0], ref, rtol=1e-5, atol=1e-7)

    def test_multichannel_sums_over_input_channels(self, rng):
        x = rng.normal(size=(1, 3, 7, 7))
        w = rng.normal(size=(2, 3, 3, 3))
        ours = conv_forward(x, w, (1, 1), 0)
        for o in range(2):
            ref = sum(
                scipy.signal.correlate(x[0, c], w[o, c], mode="valid") for c in range(3)
            )
            np.testing.assert_allclose(ours[0, o], ref, rtol=1e-5, atol=1e-6)

    def test_stride_subsamples(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        full = conv_forward(x, w, (1, 1), 0)
        strided = conv_forward(x, w, (2, 2), 0)
        np.testing.assert_allclose(strided, full[:, :, ::2, ::2], rtol=1e-6)

    def test_padding_equivalence(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = rng.normal(size=(1, 1, 3, 3))
        padded_input = np.pad(x, ((0, 0), (0, 0), (1, 1), (2, 2)))
        a = conv_forward(x, w, (1, 1), ((1, 1), (2, 2)))
        b = conv_forward(padded_input, w, (1, 1), 0)
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_bias_added_per_channel(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        w = rng.normal(size=(2, 1, 3, 3))
        b = np.array([10.0, -10.0])
        with_b = conv_forward(x, w, (1, 1), 0, bias=b)
        without = conv_forward(x, w, (1, 1), 0)
        np.testing.assert_allclose(with_b[:, 0], without[:, 0] + 10, rtol=1e-5)
        np.testing.assert_allclose(with_b[:, 1], without[:, 1] - 10, rtol=1e-5)

    def test_3d_reference(self, rng):
        x = rng.normal(size=(1, 1, 5, 6, 7))
        w = rng.normal(size=(1, 1, 3, 3, 3))
        ours = conv_forward(x, w, (1, 1, 1), 0)
        ref = scipy.signal.correlate(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(ours[0, 0], ref, rtol=1e-5, atol=1e-6)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv_forward(np.zeros((1, 2, 4, 4)), np.zeros((1, 3, 3, 3)), 1, 0)


class TestAdjointIdentities:
    """<A x, y> == <x, A^T y> — the property the whole backward relies on."""

    @pytest.mark.parametrize(
        "spatial,k,s,p",
        [
            ((9, 10), (3, 3), (1, 1), 1),
            ((9, 10), (4, 4), (2, 2), 1),
            ((9, 11), (4, 3), (2, 2), ((1, 1), (0, 2))),
            ((6, 9, 11), (3, 4, 4), (1, 2, 2), 1),
        ],
    )
    def test_input_adjoint(self, rng, spatial, k, s, p):
        cin, cout = 3, 2
        x = rng.normal(size=(2, cin) + spatial)
        w = rng.normal(size=(cout, cin) + k)
        y = conv_forward(x, w, s, p)
        z = rng.normal(size=y.shape)
        lhs = np.vdot(y, z)
        rhs = np.vdot(x, conv_input_grad(z, w, spatial, s, p))
        assert abs(lhs - rhs) <= 1e-8 * max(abs(lhs), 1.0) + 1e-6

    def test_weight_adjoint(self, rng):
        spatial, k, s, p = (8, 9), (4, 4), (2, 2), 1
        x = rng.normal(size=(2, 3) + spatial)
        w = rng.normal(size=(4, 3) + k)
        y = conv_forward(x, w, s, p)
        z = rng.normal(size=y.shape)
        gw = conv_weight_grad(x, z, k, s, p)
        # <conv(x; w), z> is linear in w: gradient contracted with w equals it.
        lhs = np.vdot(y, z)
        rhs = np.vdot(w, gw)
        assert abs(lhs - rhs) <= 1e-8 * max(abs(lhs), 1.0) + 1e-6

    def test_input_grad_handles_remainder_columns(self, rng):
        """Columns the strided forward never touched must get zero gradient."""

        x = rng.normal(size=(1, 1, 5, 5))  # k=2, s=2: last row/col unused
        w = rng.normal(size=(1, 1, 2, 2))
        y = conv_forward(x, w, (2, 2), 0)
        gy = np.ones_like(y)
        gx = conv_input_grad(gy, w, (5, 5), (2, 2), 0)
        assert np.all(gx[:, :, 4, :] == 0)
        assert np.all(gx[:, :, :, 4] == 0)
