"""Deeper AMP coverage: numerics, layer integration, thread-locality."""

import threading

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.amp import autocast, is_half, quantize_fp16


class TestQuantizeNumerics:
    def test_exactly_representable_passthrough(self):
        """Values on the fp16 grid survive the round trip bit-exactly."""

        values = np.array([0.0, 1.0, -2.5, 0.125, 65504.0], dtype=np.float32)
        np.testing.assert_array_equal(quantize_fp16(values), values)

    def test_rounding_is_nearest(self):
        # fp16 spacing at 1.0 is 2^-10; halfway values round to even.
        x = np.array([1.0 + 2.0**-11], dtype=np.float32)
        q = quantize_fp16(x)
        assert q[0] in (np.float32(1.0), np.float32(1.0 + 2.0**-10))

    def test_negative_saturation(self):
        q = quantize_fp16(np.array([-1e9], dtype=np.float32))
        assert q[0] == pytest.approx(-65504.0)

    def test_subnormals_preserved(self):
        x = np.array([6e-8], dtype=np.float32)  # fp16 subnormal range
        q = quantize_fp16(x)
        assert q[0] >= 0.0 and q[0] < 1e-6

    def test_relative_error_bound(self, rng):
        """fp16 rounding carries ≤ 2^-11 relative error in the normal range."""

        x = rng.uniform(0.001, 1000.0, size=4096).astype(np.float32)
        q = quantize_fp16(x)
        rel = np.abs(q - x) / x
        assert float(rel.max()) <= 2.0**-11 * (1 + 1e-6)


class TestLayerIntegration:
    def test_conv_outputs_on_fp16_grid(self, rng):
        conv = nn.Conv2d(2, 3, 3, padding=1)
        x = Tensor(rng.normal(size=(1, 2, 6, 6)).astype(np.float32))
        with nn.no_grad(), autocast():
            y = conv(x)
        np.testing.assert_array_equal(y.data, quantize_fp16(y.data))

    def test_linear_outputs_on_fp16_grid(self, rng):
        lin = nn.Linear(5, 4)
        x = Tensor(rng.normal(size=(3, 5)).astype(np.float32))
        with nn.no_grad(), autocast():
            y = lin(x)
        np.testing.assert_array_equal(y.data, quantize_fp16(y.data))

    def test_convtranspose_respects_autocast(self, rng):
        deconv = nn.ConvTranspose2d(2, 2, 4, stride=2, padding=1)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)).astype(np.float32))
        with nn.no_grad(), autocast():
            y = deconv(x)
        np.testing.assert_array_equal(y.data, quantize_fp16(y.data))

    def test_fp32_weights_untouched(self, rng):
        """AMP casts copies — master weights stay full precision."""

        conv = nn.Conv2d(2, 2, 3)
        before = conv.weight.data.copy()
        x = Tensor(rng.normal(size=(1, 2, 5, 5)).astype(np.float32))
        with nn.no_grad(), autocast():
            conv(x)
        np.testing.assert_array_equal(conv.weight.data, before)


class TestThreadLocality:
    def test_autocast_does_not_leak_across_threads(self):
        seen = {}

        def worker():
            seen["half_in_thread"] = is_half()

        with autocast():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["half_in_thread"] is False

    def test_no_grad_does_not_leak_across_threads(self):
        from repro.nn import is_grad_enabled, no_grad

        seen = {}

        def worker():
            seen["grad_in_thread"] = is_grad_enabled()

        with no_grad():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["grad_in_thread"] is True
