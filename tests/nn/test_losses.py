"""The bicephalous losses: focal (Eq. 1) and masked MAE (Eq. 2)."""

import math

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.losses import (
    apply_segmentation_mask,
    focal_loss,
    mae_loss,
    masked_mae_loss,
    mse_loss,
)


class TestFocalLoss:
    def test_matches_manual_formula(self, rng):
        """Eq. (1) evaluated by hand: -l·log2(p)(1-p)^γ - (1-l)·log2(1-p)p^γ."""

        p = rng.uniform(0.05, 0.95, size=(4, 5)).astype(np.float32)
        labels = (rng.random((4, 5)) > 0.5).astype(np.float32)
        gamma = 2.0
        manual = np.mean(
            -labels * np.log2(p) * (1 - p) ** gamma
            - (1 - labels) * np.log2(1 - p) * p**gamma
        )
        ours = focal_loss(Tensor(p), labels, gamma=gamma).item()
        assert ours == pytest.approx(manual, rel=1e-5)

    def test_perfect_prediction_near_zero(self):
        p = np.array([0.999999, 1e-6], dtype=np.float32)
        labels = np.array([1.0, 0.0], dtype=np.float32)
        assert focal_loss(Tensor(p), labels).item() < 1e-4

    def test_gamma_zero_is_plain_bce_base2(self, rng):
        p = rng.uniform(0.2, 0.8, size=(10,)).astype(np.float32)
        labels = (rng.random(10) > 0.5).astype(np.float32)
        manual = np.mean(-labels * np.log2(p) - (1 - labels) * np.log2(1 - p))
        assert focal_loss(Tensor(p), labels, gamma=0.0).item() == pytest.approx(
            manual, rel=1e-5
        )

    def test_focusing_downweights_easy_examples(self):
        """γ>0 must shrink the loss of well-classified samples relative to γ=0."""

        p = np.array([0.9], dtype=np.float32)  # easy positive
        labels = np.array([1.0], dtype=np.float32)
        hard = focal_loss(Tensor(p), labels, gamma=0.0).item()
        focused = focal_loss(Tensor(p), labels, gamma=2.0).item()
        assert focused < hard

    def test_extreme_probabilities_finite(self):
        p = np.array([0.0, 1.0], dtype=np.float32)
        labels = np.array([1.0, 0.0], dtype=np.float32)
        out = focal_loss(Tensor(p), labels).item()
        assert math.isfinite(out)

    def test_gradient_direction(self):
        """Increasing the probability of a positive label lowers the loss."""

        z = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        loss = focal_loss(z.sigmoid(), np.ones(1, dtype=np.float32))
        loss.backward()
        assert z.grad[0] < 0  # pushing the logit up reduces the loss

    def test_module_wrapper(self, rng):
        p = rng.uniform(0.1, 0.9, size=(3,)).astype(np.float32)
        labels = np.ones(3, dtype=np.float32)
        mod = nn.FocalLoss(gamma=2.0)
        assert mod(Tensor(p), labels).item() == pytest.approx(
            focal_loss(Tensor(p), labels).item(), rel=1e-6
        )


class TestMaskedMAE:
    def test_mask_zeroes_below_threshold(self):
        reg = Tensor(np.array([7.0, 8.0], dtype=np.float32))
        seg = Tensor(np.array([0.9, 0.1], dtype=np.float32))
        masked = apply_segmentation_mask(reg, seg, threshold=0.5)
        np.testing.assert_allclose(masked.data, [7.0, 0.0])

    def test_matches_eq2(self):
        """Eq. (2): mean |ṽ - v| over all voxels."""

        reg = Tensor(np.array([7.0, 8.0, 9.0], dtype=np.float32))
        seg = Tensor(np.array([0.9, 0.2, 0.8], dtype=np.float32))
        target = np.array([7.5, 0.0, 0.0], dtype=np.float32)
        # masked pred = [7, 0, 9]; |diff| = [0.5, 0, 9] -> mean 9.5/3
        val = masked_mae_loss(reg, seg, target).item()
        assert val == pytest.approx(9.5 / 3, rel=1e-6)

    def test_no_gradient_through_mask(self):
        """The indicator is constant: no gradient reaches seg through Eq. (2)."""

        reg = Tensor(np.array([7.0], dtype=np.float32), requires_grad=True)
        seg = Tensor(np.array([0.9], dtype=np.float32), requires_grad=True)
        masked_mae_loss(reg, seg, np.array([5.0], dtype=np.float32)).backward()
        assert seg.grad is None
        assert reg.grad is not None

    def test_masked_voxels_get_no_reg_gradient(self):
        reg = Tensor(np.array([7.0, 8.0], dtype=np.float32), requires_grad=True)
        seg = Tensor(np.array([0.9, 0.1], dtype=np.float32))
        masked_mae_loss(reg, seg, np.array([1.0, 1.0], dtype=np.float32)).backward()
        assert reg.grad[0] != 0
        assert reg.grad[1] == 0  # masked-out voxel

    def test_threshold_is_configurable(self):
        reg = Tensor(np.array([4.0], dtype=np.float32))
        seg = Tensor(np.array([0.6], dtype=np.float32))
        tgt = np.zeros(1, dtype=np.float32)
        lo = masked_mae_loss(reg, seg, tgt, threshold=0.5).item()
        hi = masked_mae_loss(reg, seg, tgt, threshold=0.7).item()
        assert lo == pytest.approx(4.0)
        assert hi == pytest.approx(0.0)


class TestPlainLosses:
    def test_mae(self, rng):
        a = rng.normal(size=(5,)).astype(np.float32)
        b = rng.normal(size=(5,)).astype(np.float32)
        assert mae_loss(Tensor(a), b).item() == pytest.approx(
            np.mean(np.abs(a - b)), rel=1e-5
        )

    def test_mse(self, rng):
        a = rng.normal(size=(5,)).astype(np.float32)
        b = rng.normal(size=(5,)).astype(np.float32)
        assert mse_loss(Tensor(a), b).item() == pytest.approx(
            np.mean((a - b) ** 2), rel=1e-5
        )
