"""Property-based tests of the autograd/convolution substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import nn
from repro.nn import Tensor
from repro.nn.convolution import conv_forward, conv_input_grad

_SETTINGS = dict(max_examples=25, deadline=None)


def _floats(shape):
    return arrays(
        np.float64,
        shape,
        elements=st.floats(-3.0, 3.0, allow_nan=False, width=32),
    )


@settings(**_SETTINGS)
@given(
    a=_floats((3, 4)),
    b=_floats((3, 4)),
)
def test_add_backward_is_ones(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    np.testing.assert_allclose(ta.grad, np.ones_like(a, dtype=np.float32))
    np.testing.assert_allclose(tb.grad, np.ones_like(b, dtype=np.float32))


@settings(**_SETTINGS)
@given(a=_floats((4, 3)))
def test_mul_grad_is_other_operand(a):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(a + 1.0)
    (ta * tb).sum().backward()
    np.testing.assert_allclose(ta.grad, tb.data, rtol=1e-5, atol=1e-6)


@settings(**_SETTINGS)
@given(
    n=st.integers(1, 2),
    cin=st.integers(1, 3),
    cout=st.integers(1, 3),
    h=st.integers(4, 9),
    w=st.integers(4, 9),
    stride=st.sampled_from([1, 2]),
    pad=st.sampled_from([0, 1]),
    seed=st.integers(0, 2**31 - 1),
)
def test_conv_adjoint_identity_random(n, cin, cout, h, w, stride, pad, seed):
    """<conv(x), z> == <x, conv_input_grad(z)> for arbitrary geometry."""

    rng = np.random.default_rng(seed)
    k = 3
    if h + 2 * pad < k or w + 2 * pad < k:
        return
    x = rng.normal(size=(n, cin, h, w))
    wgt = rng.normal(size=(cout, cin, k, k))
    y = conv_forward(x, wgt, (stride, stride), pad)
    z = rng.normal(size=y.shape)
    lhs = np.vdot(y, z)
    rhs = np.vdot(x, conv_input_grad(z, wgt, (h, w), (stride, stride), pad))
    assert abs(lhs - rhs) <= 1e-8 * max(abs(lhs), 1.0) + 1e-7


@settings(**_SETTINGS)
@given(
    shape=st.sampled_from([(1, 2, 4, 4), (2, 1, 6, 8), (1, 3, 8, 6)]),
    seed=st.integers(0, 2**31 - 1),
)
def test_pool_upsample_adjointness(shape, seed):
    """AvgPool and (scaled) Upsample are adjoint linear maps."""

    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape).astype(np.float32)
    pooled_shape = (shape[0], shape[1], shape[2] // 2, shape[3] // 2)
    y = rng.normal(size=pooled_shape).astype(np.float32)

    with nn.no_grad():
        pool_x = nn.AvgPool2d(2)(Tensor(x)).data
        up_y = nn.Upsample2d(2)(Tensor(y)).data
    lhs = np.vdot(pool_x, y)
    rhs = np.vdot(x, up_y) / 4.0  # adjoint of mean-pool is upsample / k²
    assert abs(lhs - rhs) < 1e-3


@settings(**_SETTINGS)
@given(
    logits=_floats((3, 5)),
    seed=st.integers(0, 2**31 - 1),
    gamma=st.sampled_from([0.0, 1.0, 2.0]),
)
def test_focal_loss_nonnegative_and_finite(logits, seed, gamma):
    labels = (np.random.default_rng(seed).random((3, 5)) > 0.8).astype(np.float32)
    val = nn.focal_loss(Tensor(logits).sigmoid(), labels, gamma=gamma).item()
    assert np.isfinite(val)
    assert val >= 0.0


@settings(**_SETTINGS)
@given(x=_floats((2, 3, 4)))
def test_sigmoid_range_and_symmetry(x):
    s = Tensor(x).sigmoid().data
    assert np.all(s >= 0) and np.all(s <= 1)
    s_neg = Tensor(-x).sigmoid().data
    np.testing.assert_allclose(s + s_neg, 1.0, atol=1e-6)


@settings(**_SETTINGS)
@given(
    x=_floats((4, 6)),
    lo=st.floats(-2.0, 0.0),
    hi=st.floats(0.1, 2.0),
)
def test_clip_bounds(x, lo, hi):
    out = Tensor(x).clip(lo, hi).data
    assert out.min() >= np.float32(lo) - 1e-6
    assert out.max() <= np.float32(hi) + 1e-6
