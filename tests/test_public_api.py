"""Public-API contract tests: exports, `__all__` consistency, docstrings.

Guards the surface a downstream user depends on: every name advertised in a
package's ``__all__`` must resolve, every public module/class must carry a
docstring, and the headline entry points must stay importable from their
documented locations.
"""

import importlib
import inspect
import pathlib

import pytest

_PACKAGES = [
    "repro",
    "repro.nn",
    "repro.nn.pruning",
    "repro.nn.quantization",
    "repro.tpc",
    "repro.core",
    "repro.train",
    "repro.baselines",
    "repro.metrics",
    "repro.perf",
    "repro.daq",
    "repro.serve",
    "repro.io",
    "repro.viz",
    "repro.cli",
    "repro.analysis",
]


class TestExports:
    @pytest.mark.parametrize("name", _PACKAGES)
    def test_importable(self, name):
        assert importlib.import_module(name) is not None

    @pytest.mark.parametrize("name", _PACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"

    @pytest.mark.parametrize("name", _PACKAGES)
    def test_no_public_definition_escapes_all(self, name):
        """The reverse direction of the ``__all__`` contract: every public
        function/class *defined* in the module must be advertised, so the
        declared surface and the actual surface cannot drift apart."""

        module = importlib.import_module(name)
        declared = getattr(module, "__all__", None)
        if declared is None:
            pytest.skip(f"{name} declares no __all__")
        undeclared = [
            symbol for symbol, obj in vars(module).items()
            if not symbol.startswith("_")
            and symbol not in declared
            and (inspect.isclass(obj) or inspect.isfunction(obj))
            and getattr(obj, "__module__", "") == module.__name__
        ]
        assert not undeclared, (
            f"{name} defines public names missing from __all__: {undeclared}"
        )

    def test_static_all_audit_is_clean(self):
        """The static half of the two-way check: ``repro.analysis.api_lint``
        walks every module *without importing it* and errors (AP002) on any
        ``__all__`` entry with no corresponding binding."""

        import repro
        from repro.analysis.api_lint import audit_package

        src_root = pathlib.Path(repro.__file__).resolve().parent.parent
        errors = [d for d in audit_package(src_root) if d.severity == "error"]
        assert not errors, [d.format() for d in errors]

    @pytest.mark.parametrize("name", _PACKAGES)
    def test_module_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"


class TestHeadlineEntryPoints:
    def test_documented_quickstart_imports(self):
        """The README quickstart's import lines must keep working."""

        from repro.core import BCAECompressor, build_model  # noqa: F401
        from repro.tpc import TINY_GEOMETRY, generate_wedge_dataset  # noqa: F401
        from repro.train import TrainConfig, Trainer  # noqa: F401

    def test_model_names_registry(self):
        from repro.core import MODEL_NAMES, build_model

        for name in MODEL_NAMES:
            model = build_model(name, wedge_spatial=(16, 24, 30), seed=0, **(
                {"m": 1, "n": 1, "d": 1} if name == "bcae_2d" else {}
            ))
            assert model.encoder_parameters() > 0

    def test_cli_console_entry(self):
        from repro.cli import main

        assert callable(main)

    def test_version(self):
        import repro

        assert repro.__version__


class TestDocstrings:
    @pytest.mark.parametrize("name", _PACKAGES)
    def test_public_classes_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) and obj.__module__.startswith("repro"):
                assert obj.__doc__, f"{name}.{symbol} (class) lacks a docstring"

    @pytest.mark.parametrize("name", _PACKAGES)
    def test_public_functions_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isfunction(obj) and obj.__module__.startswith("repro"):
                assert obj.__doc__, f"{name}.{symbol} (function) lacks a docstring"


class TestServingApiDocumented:
    """The serving layer is the repo's outward-facing API: every name in
    ``repro.serve.__all__`` must carry a docstring, and so must every
    public method those classes expose (downstream users discover the
    surface through ``help()`` / docs, not by reading the source)."""

    def test_every_export_documented(self):
        serve = importlib.import_module("repro.serve")
        undocumented = [
            symbol for symbol in serve.__all__
            if not inspect.getdoc(getattr(serve, symbol))
        ]
        assert not undocumented, f"undocumented serve exports: {undocumented}"

    def test_public_methods_documented(self):
        serve = importlib.import_module("repro.serve")
        missing = []
        for symbol in serve.__all__:
            obj = getattr(serve, symbol)
            if not inspect.isclass(obj):
                continue
            for mname, member in inspect.getmembers(obj):
                if mname.startswith("_"):
                    continue
                if not (inspect.isfunction(member) or inspect.iscoroutinefunction(member)):
                    continue
                if member.__module__ is None or not member.__module__.startswith("repro"):
                    continue
                if not inspect.getdoc(member):
                    missing.append(f"{symbol}.{mname}")
        assert not missing, f"undocumented serve methods: {missing}"

    def test_headline_entry_points_show_examples(self):
        """The docstring pass promises usage examples on the headline
        serving APIs — keep them from rotting away."""

        from repro.serve import (
            AsyncServingSession,
            DecompressionService,
            ServiceConfig,
            SlabRing,
            StreamingCompressionService,
        )

        for obj in (ServiceConfig, StreamingCompressionService,
                    DecompressionService, AsyncServingSession, SlabRing,
                    StreamingCompressionService.compress_stream_async):
            assert ">>>" in (inspect.getdoc(obj) or ""), (
                f"{getattr(obj, '__qualname__', obj)} lost its usage example"
            )
