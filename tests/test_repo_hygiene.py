"""Repository hygiene: no bytecode or cache artifacts may be tracked.

``__pycache__`` directories regenerate on every run; once one is
committed it shadows real changes and bloats every diff.  CI greps for
this too, but running the same guard in tier-1 catches it before a PR is
even opened — at any directory depth.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_ls_files() -> list[str]:
    if shutil.which("git") is None:
        pytest.skip("git unavailable")
    proc = subprocess.run(
        ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True, text=True
    )
    if proc.returncode != 0:
        pytest.skip(f"not a git checkout: {proc.stderr.strip()}")
    return proc.stdout.splitlines()

def test_no_tracked_bytecode_at_any_depth():
    offenders = [
        path
        for path in _git_ls_files()
        if "__pycache__" in Path(path).parts
        or path.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, (
        "tracked bytecode/cache files (git rm -r --cached them): "
        + ", ".join(offenders[:10])
    )


def test_gitignore_covers_caches():
    ignore = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__", ".pytest_cache", ".benchmarks"):
        assert pattern in ignore, f".gitignore is missing {pattern!r}"
