"""TPC geometry: paper dimensions and partition invariants."""

import numpy as np
import pytest

from repro.tpc import PAPER_GEOMETRY, SMALL_GEOMETRY, TINY_GEOMETRY, TPCGeometry


class TestPaperDimensions:
    def test_outer_group_event_shape(self):
        """Paper §2.1: outer layer group digitizes to (16, 2304, 498)."""

        assert PAPER_GEOMETRY.event_shape == (16, 2304, 498)

    def test_wedge_shape(self):
        """Paper §2.1: a TPC wedge is (16, 192, 249)."""

        assert PAPER_GEOMETRY.wedge_shape == (16, 192, 249)

    def test_24_wedges(self):
        """12 azimuthal sectors × 2 horizontal halves."""

        assert PAPER_GEOMETRY.n_wedges == 24

    def test_voxels_per_wedge(self):
        """16·192·249 = 764928 voxels — the numerator of the 31.125 ratio."""

        assert PAPER_GEOMETRY.voxels_per_wedge == 764928

    def test_wedge_is_30_degrees(self):
        assert PAPER_GEOMETRY.wedge_azim * PAPER_GEOMETRY.n_wedges_azim == 2304
        assert PAPER_GEOMETRY.phi_bin_width * PAPER_GEOMETRY.wedge_azim == pytest.approx(
            2 * np.pi / 12
        )

    def test_layer_radii_span_group(self):
        radii = PAPER_GEOMETRY.layer_radii
        assert radii.shape == (16,)
        assert radii[0] == pytest.approx(PAPER_GEOMETRY.r_min)
        assert radii[-1] == pytest.approx(PAPER_GEOMETRY.r_max)
        assert np.all(np.diff(radii) > 0)


class TestValidation:
    def test_indivisible_azim_raises(self):
        with pytest.raises(ValueError):
            TPCGeometry(n_azim=100, n_wedges_azim=12)

    def test_indivisible_z_raises(self):
        with pytest.raises(ValueError):
            TPCGeometry(n_z=499, n_z_halves=2)

    def test_scaled_keeps_physics(self):
        g = PAPER_GEOMETRY.scaled(576, 128)
        assert g.r_min == PAPER_GEOMETRY.r_min
        assert g.b_field == PAPER_GEOMETRY.b_field
        assert g.wedge_shape == (16, 48, 64)


class TestPartition:
    @pytest.mark.parametrize("geometry", [TINY_GEOMETRY, SMALL_GEOMETRY])
    def test_split_assemble_roundtrip(self, geometry, rng):
        event = rng.integers(0, 1024, size=geometry.event_shape).astype(np.uint16)
        wedges = geometry.split_wedges(event)
        assert wedges.shape == (geometry.n_wedges,) + geometry.wedge_shape
        np.testing.assert_array_equal(geometry.assemble_wedges(wedges), event)

    def test_wedges_partition_all_voxels(self, rng):
        """Every voxel lands in exactly one wedge (sum preservation)."""

        g = TINY_GEOMETRY
        event = rng.random(g.event_shape).astype(np.float32)
        wedges = g.split_wedges(event)
        assert wedges.sum() == pytest.approx(event.sum(), rel=1e-5)

    def test_split_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            TINY_GEOMETRY.split_wedges(np.zeros((2, 2, 2)))

    def test_assemble_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            TINY_GEOMETRY.assemble_wedges(np.zeros((2, 2, 2, 2)))


class TestCoordinates:
    def test_phi_wraps(self):
        g = PAPER_GEOMETRY
        assert g.phi_to_bin(np.array([2 * np.pi + 0.001]))[0] == pytest.approx(
            g.phi_to_bin(np.array([0.001]))[0], abs=1e-6
        )

    def test_z_to_bin_range(self):
        g = PAPER_GEOMETRY
        assert g.z_to_bin(np.array([-g.z_half_length]))[0] == pytest.approx(0.0)
        assert g.z_to_bin(np.array([g.z_half_length]))[0] == pytest.approx(g.n_z)

    def test_drift_length_is_distance_to_endcap(self):
        g = PAPER_GEOMETRY
        assert g.drift_length(np.array([0.0]))[0] == pytest.approx(g.z_half_length)
        assert g.drift_length(np.array([g.z_half_length]))[0] == pytest.approx(0.0)
