"""Cluster reconstruction: the §2.1 trajectory-interpolation criterion."""

import numpy as np
import pytest

from repro.tpc.reco import (
    Cluster,
    centroid_residuals,
    find_clusters,
    match_clusters,
)


def _wedge_with_blob(center=(10.0, 12.0), layer=0, amplitude=100.0, shape=(4, 24, 32)):
    """A Gaussian charge blob with an exactly computable centroid."""

    w = np.zeros(shape, dtype=np.float32)
    a = np.arange(shape[1])[:, None]
    h = np.arange(shape[2])[None, :]
    blob = amplitude * np.exp(
        -0.5 * (((a - center[0]) / 1.2) ** 2 + ((h - center[1]) / 1.2) ** 2)
    )
    blob[blob < 1.0] = 0.0
    w[layer] = blob
    return w


class TestFindClusters:
    def test_single_blob_found(self):
        clusters = find_clusters(_wedge_with_blob())
        assert len(clusters) == 1
        assert clusters[0].layer == 0

    def test_centroid_accuracy(self):
        clusters = find_clusters(_wedge_with_blob(center=(10.0, 12.0)))
        ca, ch = clusters[0].centroid
        assert ca == pytest.approx(10.0, abs=0.05)
        assert ch == pytest.approx(12.0, abs=0.05)

    def test_subbin_centroid(self):
        """ADC weighting resolves positions below the bin pitch (§2.1)."""

        clusters = find_clusters(_wedge_with_blob(center=(10.4, 12.7)))
        ca, ch = clusters[0].centroid
        assert ca == pytest.approx(10.4, abs=0.1)
        assert ch == pytest.approx(12.7, abs=0.1)

    def test_two_separated_blobs(self):
        w = _wedge_with_blob(center=(6.0, 6.0)) + _wedge_with_blob(center=(18.0, 26.0))
        clusters = find_clusters(w)
        assert len(clusters) == 2

    def test_layers_are_independent(self):
        w = _wedge_with_blob(layer=0) + _wedge_with_blob(layer=2)
        clusters = find_clusters(w)
        assert sorted(c.layer for c in clusters) == [0, 2]

    def test_charge_cut(self):
        w = _wedge_with_blob(amplitude=10.0)
        assert find_clusters(w, min_charge=1e4) == []

    def test_size_cut(self):
        w = np.zeros((1, 8, 8), dtype=np.float32)
        w[0, 3, 3] = 50.0  # single-voxel blip
        assert find_clusters(w, min_size=2) == []
        assert len(find_clusters(w, min_size=1)) == 1

    def test_empty_wedge(self):
        assert find_clusters(np.zeros((2, 8, 8), dtype=np.float32)) == []

    def test_rank_check(self):
        with pytest.raises(ValueError):
            find_clusters(np.zeros((8, 8), dtype=np.float32))


class TestMatching:
    def test_identity_match(self):
        w = _wedge_with_blob()
        ref = find_clusters(w)
        pairs = match_clusters(ref, find_clusters(w))
        assert len(pairs) == 1
        a, b = pairs[0]
        assert a.centroid == b.centroid

    def test_shifted_match_within_radius(self):
        ref = find_clusters(_wedge_with_blob(center=(10.0, 12.0)))
        test = find_clusters(_wedge_with_blob(center=(10.8, 12.5)))
        assert len(match_clusters(ref, test, max_distance=3.0)) == 1

    def test_too_far_no_match(self):
        ref = find_clusters(_wedge_with_blob(center=(6.0, 6.0)))
        test = find_clusters(_wedge_with_blob(center=(18.0, 26.0)))
        assert match_clusters(ref, test, max_distance=3.0) == []

    def test_layers_not_mixed(self):
        ref = find_clusters(_wedge_with_blob(layer=0))
        test = find_clusters(_wedge_with_blob(layer=1))
        assert match_clusters(ref, test) == []

    def test_one_to_one(self):
        """Two reference blobs cannot claim the same test cluster."""

        ref = find_clusters(
            _wedge_with_blob(center=(10.0, 10.0)) + _wedge_with_blob(center=(13.0, 10.0))
        )
        test = find_clusters(_wedge_with_blob(center=(11.5, 10.0)))
        pairs = match_clusters(ref, test, max_distance=5.0)
        assert len(pairs) == 1


class TestResiduals:
    def test_perfect_reconstruction(self):
        w = _wedge_with_blob()
        s = centroid_residuals(w, w)
        assert s.efficiency == 1.0
        assert s.fake_rate == 0.0
        assert s.mean_shift == pytest.approx(0.0, abs=1e-9)
        assert s.mean_charge_ratio == pytest.approx(1.0, rel=1e-6)

    def test_dropped_cluster_lowers_efficiency(self):
        w = _wedge_with_blob(center=(6.0, 6.0)) + _wedge_with_blob(center=(18.0, 26.0))
        partial = _wedge_with_blob(center=(6.0, 6.0))
        s = centroid_residuals(w, partial)
        assert s.efficiency == pytest.approx(0.5)

    def test_fabricated_cluster_raises_fake_rate(self):
        w = _wedge_with_blob(center=(6.0, 6.0))
        noisy = w + _wedge_with_blob(center=(18.0, 26.0))
        s = centroid_residuals(w, noisy)
        assert s.fake_rate == pytest.approx(0.5)

    def test_uniform_scaling_keeps_centroids(self):
        """Scaling all ADC values preserves relative ratios → zero shift.

        This is exactly the paper's point: what matters is the *ratio*
        between neighbouring sensors, not the absolute scale.
        """

        w = _wedge_with_blob(center=(10.3, 12.6))
        s = centroid_residuals(w, 0.5 * w)
        assert s.mean_shift == pytest.approx(0.0, abs=1e-6)
        assert s.mean_charge_ratio == pytest.approx(0.5, rel=1e-6)

    def test_ratio_distortion_shifts_centroids(self):
        """Distorting relative ADC ratios moves the interpolated position."""

        w = _wedge_with_blob(center=(10.0, 12.0))
        skewed = w.copy()
        skewed[:, 11:, :] *= 1.8  # amplify one side of the blob
        s = centroid_residuals(w, skewed)
        assert s.mean_shift > 0.05

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            centroid_residuals(np.zeros((1, 4, 4)), np.zeros((1, 4, 5)))

    def test_on_synthetic_event(self, tiny_train):
        """The chain runs on real generator output at scale."""

        from repro.tpc import log_transform

        w = log_transform(tiny_train.wedges[0])
        s = centroid_residuals(w, w, min_size=2)
        assert s.n_reference > 0
        assert s.efficiency == 1.0
