"""Event generation: digitization contract and paper's data statistics."""

import numpy as np
import pytest

from repro.tpc import (
    ADC_MAX,
    TINY_GEOMETRY,
    ZERO_SUPPRESSION_THRESHOLD,
    HijingLikeGenerator,
    log_transform,
)


@pytest.fixture(scope="module")
def tiny_event(tiny_gen):
    return tiny_gen.event(42)


@pytest.fixture(scope="module")
def tiny_gen():
    return HijingLikeGenerator.calibrated(TINY_GEOMETRY, seed=0)


class TestDigitizationContract:
    def test_dtype_and_range(self, tiny_event):
        """10-bit unsigned ADC (paper §2.1)."""

        assert tiny_event.dtype == np.uint16
        assert tiny_event.max() <= ADC_MAX

    def test_zero_suppression(self, tiny_event):
        """No surviving value below 64 (paper §2.1)."""

        nonzero = tiny_event[tiny_event > 0]
        assert nonzero.min() >= ZERO_SUPPRESSION_THRESHOLD

    def test_log_values_above_six(self, tiny_event):
        """log2(65) ≈ 6.02: every nonzero log-ADC value exceeds 6 (Fig. 3)."""

        logv = log_transform(tiny_event)
        nz = logv[logv > 0]
        assert nz.min() > 6.0
        assert nz.max() <= 10.0

    def test_determinism_per_seed(self, tiny_gen):
        np.testing.assert_array_equal(tiny_gen.event(7), tiny_gen.event(7))

    def test_different_seeds_differ(self, tiny_gen):
        assert not np.array_equal(tiny_gen.event(7), tiny_gen.event(8))

    def test_event_shape(self, tiny_event):
        assert tiny_event.shape == TINY_GEOMETRY.event_shape


class TestOccupancy:
    def test_occupancy_near_paper(self, tiny_gen):
        """Calibrated generators land near the paper's 10.8% occupancy."""

        occs = [tiny_gen.occupancy(tiny_gen.event(s)) for s in range(4)]
        assert 0.04 < float(np.mean(occs)) < 0.22

    def test_occupancy_scales_with_multiplicity(self):
        lo = HijingLikeGenerator(geometry=TINY_GEOMETRY, multiplicity=60, pileup_mean=0.0)
        hi = HijingLikeGenerator(geometry=TINY_GEOMETRY, multiplicity=600, pileup_mean=0.0)
        assert lo.occupancy(lo.event(3)) < hi.occupancy(hi.event(3))

    def test_empty_without_tracks(self):
        gen = HijingLikeGenerator(
            geometry=TINY_GEOMETRY, multiplicity=0.0, pileup_mean=0.0
        )
        ev = gen.event(0)
        # Noise alone (σ=20) essentially never crosses the 64-count threshold.
        assert gen.occupancy(ev) < 1e-3


class TestSpectrum:
    def test_log_adc_spectrum_is_falling(self, tiny_gen):
        """Figure 3: counts fall from the 6.02 edge toward 10."""

        logv = log_transform(tiny_gen.event(1))
        nz = logv[logv > 0]
        hist, _ = np.histogram(nz, bins=[6.0, 7.0, 8.0, 9.0, 10.0])
        assert hist[0] > hist[1] > hist[2]

    def test_wedges_shape_and_consistency(self, tiny_gen):
        wedges = tiny_gen.wedges(5)
        assert wedges.shape == (TINY_GEOMETRY.n_wedges,) + TINY_GEOMETRY.wedge_shape
        event = tiny_gen.event(5)
        assert wedges.sum() == event.sum()


class TestCalibration:
    def test_calibrated_beats_naive_guess(self):
        """One-probe calibration should land within a factor ~2 of target."""

        gen = HijingLikeGenerator.calibrated(TINY_GEOMETRY, target_occupancy=0.108, seed=0)
        occ = np.mean([gen.occupancy(gen.event(s)) for s in range(3)])
        assert 0.05 < occ < 0.22

    def test_calibrated_respects_custom_target(self):
        lo = HijingLikeGenerator.calibrated(TINY_GEOMETRY, target_occupancy=0.03, seed=0)
        hi = HijingLikeGenerator.calibrated(TINY_GEOMETRY, target_occupancy=0.20, seed=0)
        assert lo.multiplicity < hi.multiplicity
