"""Internal invariants of the vectorized ionization-trail sampler."""

import numpy as np
import pytest

from repro.tpc import TINY_GEOMETRY, HijingLikeGenerator, TrackBatch
from repro.tpc.events import DigitizationConfig


def _tracks(pt, eta=0.0, phi0=0.0, charge=1.0, z0=0.0):
    pt = np.atleast_1d(np.asarray(pt, dtype=np.float64))
    n = pt.size
    return TrackBatch(
        pt=pt,
        eta=np.full(n, eta, dtype=np.float64),
        phi0=np.full(n, phi0, dtype=np.float64),
        charge=np.full(n, charge, dtype=np.float64),
        z0=np.full(n, z0, dtype=np.float64),
    )


@pytest.fixture()
def gen():
    return HijingLikeGenerator(geometry=TINY_GEOMETRY, multiplicity=0.0, pileup_mean=0.0)


class TestTrailSamples:
    def test_radii_within_group(self, gen, rng):
        layer, phi, z, r, amp = gen._trail_samples(_tracks([2.0, 0.5, 0.3]), rng)
        geo = gen.geometry
        assert np.all(r >= geo.r_min - 1e-9)
        assert np.all(r <= geo.r_max + 1e-9)

    def test_layer_indices_consistent_with_radii(self, gen, rng):
        layer, phi, z, r, amp = gen._trail_samples(_tracks([1.0]), rng)
        geo = gen.geometry
        pitch = (geo.r_max - geo.r_min) / geo.n_layers
        expected = np.floor((r - geo.r_min) / pitch).astype(np.int64)
        np.testing.assert_array_equal(layer, expected)

    def test_every_layer_touched_by_stiff_track(self, gen, rng):
        layer, *_ = gen._trail_samples(_tracks([50.0]), rng)
        assert set(layer.tolist()) == set(range(gen.geometry.n_layers))

    def test_sample_count_scales_with_path(self, gen, rng):
        """A dipped track has a longer 3D path but the same transverse span:
        the *transverse* step policy yields equal sample counts; a track
        that curls up early yields fewer."""

        straight = gen._trail_samples(_tracks([10.0], eta=0.0), rng)[0].size
        soft = gen._trail_samples(_tracks([0.16], eta=0.0), rng)[0].size
        assert soft < straight

    def test_amplitudes_positive_and_clipped(self, gen, rng):
        *_, amp = gen._trail_samples(_tracks([1.0] * 50), rng)
        assert np.all(amp >= 0.0)
        assert np.all(amp <= 6.0 * 1023)

    def test_no_tracks_no_samples(self, gen, rng):
        layer, phi, z, r, amp = gen._trail_samples(_tracks([]), rng)
        assert layer.size == 0

    def test_out_of_volume_track_excluded(self, gen, rng):
        """A vertex beyond the endcap leaves nothing in the drift volume."""

        layer, *_ = gen._trail_samples(_tracks([5.0], eta=1.0, z0=2.0), rng)
        assert layer.size == 0


class TestDepositConservation:
    def test_total_charge_matches_amplitudes(self, gen, rng):
        """The stencil is normalized: deposited charge == sampled charge
        (up to edge losses at the z boundary)."""

        tracks = _tracks([2.0, 1.0, 0.7], eta=0.1)
        rng_a = np.random.default_rng(0)
        layer, phi, z, r, amp = gen._trail_samples(tracks, rng_a)
        rng_b = np.random.default_rng(0)
        charge = gen.deposit(tracks, rng_b)
        assert charge.sum() <= amp.sum() * (1 + 1e-9)
        assert charge.sum() >= amp.sum() * 0.95  # ≤5% lost at z edges

    def test_charge_wraps_azimuth(self, gen, rng):
        """Deposits at phi ≈ 0 must wrap into the last azimuthal bins."""

        tracks = _tracks([20.0], phi0=0.0)  # stiff: crossings at phi ~ 0
        charge = gen.deposit(tracks, np.random.default_rng(1))
        # Stencil half-width 2 -> bins on both sides of the wrap are hit.
        assert charge[:, :3, :].sum() > 0
        assert charge[:, -3:, :].sum() > 0

    def test_deterministic_given_rng(self, gen):
        tracks = _tracks([1.0, 2.0])
        a = gen.deposit(tracks, np.random.default_rng(7))
        b = gen.deposit(tracks, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestDigitizationConfigKnobs:
    def test_smaller_step_more_samples(self, rng):
        coarse = HijingLikeGenerator(
            geometry=TINY_GEOMETRY,
            digitization=DigitizationConfig(step_length=0.008),
        )
        fine = HijingLikeGenerator(
            geometry=TINY_GEOMETRY,
            digitization=DigitizationConfig(step_length=0.002),
        )
        t = _tracks([5.0])
        n_coarse = coarse._trail_samples(t, np.random.default_rng(0))[0].size
        n_fine = fine._trail_samples(t, np.random.default_rng(0))[0].size
        assert n_fine > 2 * n_coarse

    def test_zero_suppression_threshold_respected(self, rng):
        gen = HijingLikeGenerator(
            geometry=TINY_GEOMETRY, multiplicity=40.0, pileup_mean=0.0,
            digitization=DigitizationConfig(zero_suppression=200),
        )
        ev = gen.event(3)
        nz = ev[ev > 0]
        if nz.size:
            assert nz.min() >= 200
