"""Value/shape transforms and the wedge dataset pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpc import (
    LOG_EDGE,
    DataLoader,
    TINY_GEOMETRY,
    WedgeDataset,
    generate_wedge_dataset,
    inverse_log_transform,
    log_transform,
    nonzero_labels,
    pad_horizontal,
    padded_length,
    train_test_split_events,
    unpad_horizontal,
)


class TestLogTransform:
    def test_values(self):
        adc = np.array([0, 63, 64, 1023], dtype=np.uint16)
        logv = log_transform(adc)
        np.testing.assert_allclose(
            logv, [0.0, np.log2(64), np.log2(65), np.log2(1024)], rtol=1e-6
        )

    def test_edge_constant(self):
        assert LOG_EDGE == pytest.approx(np.log2(65.0))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=64))
    def test_roundtrip_exact_on_integers(self, values):
        adc = np.array(values, dtype=np.uint16)
        np.testing.assert_array_equal(inverse_log_transform(log_transform(adc)), adc)

    def test_labels(self):
        logv = np.array([0.0, 6.5, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(nonzero_labels(logv), [0.0, 1.0, 0.0])


class TestPadding:
    def test_paper_pad_249_to_256(self):
        """§2.3: horizontal 249 → 256."""

        assert padded_length(249, 16) == 256
        w = np.ones((16, 192, 249), dtype=np.float32)
        padded = pad_horizontal(w, 256)
        assert padded.shape == (16, 192, 256)
        assert padded[..., 249:].sum() == 0.0

    def test_pad_noop_when_aligned(self):
        w = np.ones((4, 8, 32), dtype=np.float32)
        assert pad_horizontal(w).shape == (4, 8, 32)

    def test_unpad_clips(self):
        w = np.ones((2, 4, 256), dtype=np.float32)
        assert unpad_horizontal(w, 249).shape == (2, 4, 249)

    def test_unpad_too_short_raises(self):
        with pytest.raises(ValueError):
            unpad_horizontal(np.ones((2, 4, 100)), 249)

    def test_pad_shorter_target_raises(self):
        with pytest.raises(ValueError):
            pad_horizontal(np.ones((2, 4, 100)), 50)

    def test_pad_unpad_roundtrip(self, rng):
        w = rng.random((3, 5, 13)).astype(np.float32)
        np.testing.assert_array_equal(unpad_horizontal(pad_horizontal(w, 16), 13), w)


class TestSplit:
    def test_paper_split_1310_events(self):
        """Paper §2.1: 1310 events → 1048 train / 262 test (× 24 wedges)."""

        train, test = train_test_split_events(1310, 0.2)
        assert len(train) == 1048
        assert len(test) == 262
        assert len(train) * 24 == 25152
        assert len(test) * 24 == 6288

    def test_no_overlap(self):
        train, test = train_test_split_events(10)
        assert set(train).isdisjoint(test)


class TestDataset:
    def test_generate_counts(self, tiny_datasets):
        train, test = tiny_datasets
        total = TINY_GEOMETRY.n_wedges * 2
        assert len(train) + len(test) == total
        assert train.wedges.shape[1:] == TINY_GEOMETRY.wedge_shape

    def test_batch_shapes_and_labels(self, tiny_train):
        x, y = tiny_train.batch(np.arange(2))
        assert x.shape == y.shape
        assert x.dtype == np.float32
        assert set(np.unique(y)).issubset({0.0, 1.0})
        np.testing.assert_array_equal(y, (x > 0).astype(np.float32))

    def test_padded_batch_horizontal(self, tiny_train):
        x, _ = tiny_train.batch(np.arange(1), padded=True)
        assert x.shape[-1] % 16 == 0

    def test_save_load_roundtrip(self, tiny_train, tmp_path):
        path = tiny_train.save(tmp_path / "w.npz")
        loaded = WedgeDataset.load(path)
        np.testing.assert_array_equal(loaded.wedges, tiny_train.wedges)
        assert loaded.geometry == tiny_train.geometry

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            WedgeDataset(np.zeros((2, 3, 4)), TINY_GEOMETRY)


class TestDataLoader:
    def test_batches_cover_dataset(self, tiny_train):
        loader = DataLoader(tiny_train, batch_size=5, shuffle=False)
        seen = sum(x.shape[0] for x, _ in loader)
        assert seen == len(tiny_train)

    def test_drop_last(self, tiny_train):
        loader = DataLoader(tiny_train, batch_size=5, drop_last=True)
        for x, _ in loader:
            assert x.shape[0] == 5

    def test_len(self, tiny_train):
        loader = DataLoader(tiny_train, batch_size=5, drop_last=False)
        assert len(loader) == -(-len(tiny_train) // 5)

    def test_shuffle_changes_order_not_content(self, tiny_train):
        a = DataLoader(tiny_train, batch_size=len(tiny_train), shuffle=True, seed=1)
        b = DataLoader(tiny_train, batch_size=len(tiny_train), shuffle=True, seed=2)
        xa, _ = next(iter(a))
        xb, _ = next(iter(b))
        assert xa.sum() == pytest.approx(xb.sum(), rel=1e-5)

    def test_deterministic_given_seed(self, tiny_train):
        xs1 = [x.sum() for x, _ in DataLoader(tiny_train, batch_size=4, seed=9)]
        xs2 = [x.sum() for x, _ in DataLoader(tiny_train, batch_size=4, seed=9)]
        # fresh loaders with the same seed produce the same order
        assert xs1 == xs2
