"""Helical track transport: limits, conservation and acceptance."""

import numpy as np
import pytest

from repro.tpc import PAPER_GEOMETRY, TrackBatch, TrackPopulation, layer_crossings


def _single_track(pt=1.0, eta=0.0, phi0=0.0, charge=1.0, z0=0.0) -> TrackBatch:
    return TrackBatch(
        pt=np.array([pt]),
        eta=np.array([eta]),
        phi0=np.array([phi0]),
        charge=np.array([charge]),
        z0=np.array([z0]),
    )


class TestCrossings:
    def test_high_pt_goes_straight(self):
        """A stiff track crosses every layer at ~its initial azimuth."""

        cross = layer_crossings(_single_track(pt=50.0, phi0=1.0), PAPER_GEOMETRY)
        assert cross.valid.all()
        np.testing.assert_allclose(cross.phi[0], 1.0, atol=5e-3)

    def test_curvature_bends_by_charge(self):
        """Opposite charges bend to opposite sides of phi0."""

        plus = layer_crossings(_single_track(pt=0.5, charge=+1.0), PAPER_GEOMETRY)
        minus = layer_crossings(_single_track(pt=0.5, charge=-1.0), PAPER_GEOMETRY)
        assert np.all(plus.phi[0] < 0.0)
        assert np.all(minus.phi[0] > 0.0)
        np.testing.assert_allclose(plus.phi[0], -minus.phi[0], rtol=1e-10)

    def test_soft_track_does_not_reach(self):
        """pT below the rigidity limit curls up before the outer layers.

        Reaching r needs pT ≥ 0.3·B·r/2 ≈ 0.126 GeV at r = 0.60 m.
        """

        cross = layer_crossings(_single_track(pt=0.10), PAPER_GEOMETRY)
        assert not cross.valid.any()

    def test_threshold_pt_reaches_inner_only(self):
        pt_reach_inner = 0.3 * PAPER_GEOMETRY.b_field * PAPER_GEOMETRY.r_min / 2
        cross = layer_crossings(_single_track(pt=pt_reach_inner * 1.05), PAPER_GEOMETRY)
        assert cross.valid[0, 0]
        assert not cross.valid[0, -1]

    def test_eta_controls_z_advance(self):
        flat = layer_crossings(_single_track(eta=0.0), PAPER_GEOMETRY)
        fwd = layer_crossings(_single_track(eta=1.0), PAPER_GEOMETRY)
        np.testing.assert_allclose(flat.z[0], 0.0, atol=1e-9)
        assert np.all(np.diff(fwd.z[0]) > 0)  # z grows with radius

    def test_forward_track_exits_volume(self):
        """A displaced forward track exits |z| < L between r_min and r_max.

        Straight track: z(r) ≈ z0 + r·sinh(eta); with z0 = 0.8 m and
        eta = 0.35 the crossing of the endcap happens inside the group.
        """

        cross = layer_crossings(_single_track(pt=20.0, eta=0.35, z0=0.8), PAPER_GEOMETRY)
        assert cross.valid[0, 0]
        assert not cross.valid[0, -1]

    def test_z_monotonic_in_radius(self):
        cross = layer_crossings(_single_track(pt=0.7, eta=0.5), PAPER_GEOMETRY)
        assert np.all(np.diff(cross.z[0][cross.valid[0]]) > 0)

    def test_path_factor_at_least_cosh_eta(self):
        cross = layer_crossings(_single_track(pt=5.0, eta=1.0), PAPER_GEOMETRY)
        assert np.all(cross.path_factor[0] >= np.cosh(1.0) - 1e-6)


class TestPopulation:
    def test_sample_shapes_and_ranges(self, rng):
        pop = TrackPopulation()
        batch = pop.sample(1000, rng)
        assert len(batch) == 1000
        assert batch.pt.min() >= pop.pt_min
        assert batch.pt.max() <= pop.pt_max
        assert np.abs(batch.eta).max() <= pop.eta_max
        assert set(np.unique(batch.charge)) == {-1.0, 1.0}

    def test_pt_spectrum_is_falling(self, rng):
        batch = TrackPopulation().sample(20000, rng)
        low = np.count_nonzero(batch.pt < 0.5)
        high = np.count_nonzero(batch.pt > 1.0)
        assert low > high

    def test_vertex_offset_applied(self, rng):
        batch = TrackPopulation().sample(500, rng, z_offset=0.5)
        assert abs(batch.z0.mean() - 0.5) < 0.05

    def test_concatenated(self, rng):
        pop = TrackPopulation()
        a, b = pop.sample(10, rng), pop.sample(20, rng)
        assert len(a.concatenated(b)) == 30
