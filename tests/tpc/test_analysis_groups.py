"""Layer-group presets and the analysis utilities."""

import numpy as np
import pytest

from repro.tpc import (
    INNER_GROUP,
    LAYER_GROUPS,
    MIDDLE_GROUP,
    OUTER_GROUP,
    PAPER_GEOMETRY,
    full_tpc_voxels,
    log_adc_histogram,
    occupancy_per_wedge,
    wedge_summary,
)


class TestLayerGroups:
    def test_outer_is_paper(self):
        assert OUTER_GROUP is PAPER_GEOMETRY

    def test_radial_continuity(self):
        """Groups tile the radial range without overlap (paper Figure 1)."""

        assert INNER_GROUP.r_max == pytest.approx(MIDDLE_GROUP.r_min)
        assert MIDDLE_GROUP.r_max == pytest.approx(OUTER_GROUP.r_min)

    def test_each_group_16_layers(self):
        """Paper §2.1: three groups of 16 consecutive layers = 48 total."""

        assert sum(g.n_layers for g in LAYER_GROUPS) == 48

    def test_azimuthal_granularity_grows_outward(self):
        """Outer layers carry more pads (roughly constant pad pitch)."""

        assert INNER_GROUP.n_azim < MIDDLE_GROUP.n_azim < OUTER_GROUP.n_azim

    def test_full_tpc_voxel_count_near_42m(self):
        """Paper §1: 'digitizes 42M-voxels 3D pictures'."""

        total = full_tpc_voxels()
        assert 35e6 < total < 45e6

    def test_all_groups_share_wedge_partitioning(self):
        for g in LAYER_GROUPS:
            assert g.n_wedges == 24

    def test_inner_group_generates(self):
        """The generator runs on any layer group (coarser inner grid)."""

        from repro.tpc import HijingLikeGenerator

        small_inner = INNER_GROUP.scaled(288, 64)
        gen = HijingLikeGenerator.calibrated(small_inner, seed=0)
        ev = gen.event(0)
        assert ev.shape == small_inner.event_shape
        assert 0.01 < gen.occupancy(ev) < 0.4


class TestAnalysis:
    def test_histogram_summary(self, tiny_train):
        summary = log_adc_histogram(tiny_train.wedges)
        assert summary.counts.sum() == summary.n_nonzero
        assert summary.occupancy == pytest.approx(tiny_train.occupancy(), rel=1e-6)
        assert len(summary.rows()) == summary.counts.size

    def test_histogram_covers_saturated_values(self):
        adc = np.full((4, 4, 4), 1023, dtype=np.uint16)
        summary = log_adc_histogram(adc)
        assert summary.counts[-1] == adc.size  # log2(1024) = 10 lands in top bin

    def test_occupancy_per_wedge(self, tiny_train):
        occ = occupancy_per_wedge(tiny_train.wedges)
        assert occ.shape == (len(tiny_train),)
        assert occ.mean() == pytest.approx(tiny_train.occupancy(), rel=1e-6)

    def test_occupancy_varies_across_wedges(self, tiny_train):
        """Central-z wedges see more track density than edge wedges."""

        occ = occupancy_per_wedge(tiny_train.wedges)
        assert occ.std() > 0.0

    def test_wedge_summary(self, tiny_train):
        s = wedge_summary(tiny_train.wedges[0])
        assert s.shape == tiny_train.wedges[0].shape
        assert 0 <= s.occupancy <= 1
        assert s.adc_max <= 1023
        if s.occupancy > 0:
            assert s.log_mean_nonzero > 6.0
        assert "occ=" in str(s)

    def test_empty_wedge_summary(self):
        s = wedge_summary(np.zeros((2, 3, 4), dtype=np.uint16))
        assert s.occupancy == 0.0
        assert s.adc_mean_nonzero == 0.0
