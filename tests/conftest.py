"""Shared fixtures: seeded RNGs and session-cached synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tpc import TINY_GEOMETRY, HijingLikeGenerator, generate_wedge_dataset


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_datasets():
    """(train, test) wedge datasets on the tiny geometry — shared per session."""

    return generate_wedge_dataset(2, geometry=TINY_GEOMETRY, seed=3)


@pytest.fixture(scope="session")
def tiny_train(tiny_datasets):
    return tiny_datasets[0]


@pytest.fixture(scope="session")
def tiny_test(tiny_datasets):
    return tiny_datasets[1]


@pytest.fixture(scope="session")
def tiny_generator():
    return HijingLikeGenerator.calibrated(TINY_GEOMETRY, seed=0)


@pytest.fixture(scope="session")
def tiny_log_wedges(tiny_train):
    """A small batch of log-transformed wedges (unpadded)."""

    from repro.tpc import log_transform

    return log_transform(tiny_train.wedges[:3])
