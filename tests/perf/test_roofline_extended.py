"""Roofline model internals: limits, scaling laws, device variations."""

import dataclasses

import numpy as np
import pytest

from repro import nn
from repro.perf import RTX_A6000, estimate_throughput, trace_model
from repro.perf.devices import GPUSpec
from repro.perf.flops import LayerStats, ModelTrace
from repro.perf.roofline import _layer_time


def _gemm_layer(flops=1e9, bytes_moved=1e6, tc=True, util=1.0, kernels=1):
    return LayerStats(
        name="conv", kind="Conv2d", flops=flops, bytes_moved=bytes_moved,
        params=1000, kernels=kernels, tc_eligible=tc, channel_utilization=util,
    )


class TestLayerTime:
    def test_compute_bound_scaling(self):
        """Big-FLOP layers: time scales linearly with batch."""

        layer = _gemm_layer(flops=1e10, bytes_moved=1e3)
        t1 = _layer_time(layer, 1, True, RTX_A6000)
        t4 = _layer_time(layer, 4, True, RTX_A6000)
        assert t4.compute == pytest.approx(4 * t1.compute, rel=1e-9)

    def test_memory_bound_layer_uses_bandwidth(self):
        layer = _gemm_layer(flops=1e3, bytes_moved=1e9)
        t = _layer_time(layer, 1, False, RTX_A6000)
        assert t.memory > t.compute
        assert t.memory == pytest.approx(1e9 / (RTX_A6000.mem_bw_gbs * 1e9), rel=1e-9)

    def test_half_precision_halves_memory_traffic(self):
        layer = _gemm_layer(flops=1e3, bytes_moved=1e9)
        full = _layer_time(layer, 1, False, RTX_A6000)
        half = _layer_time(layer, 1, True, RTX_A6000)
        assert half.memory == pytest.approx(full.memory / 2, rel=1e-9)

    def test_tc_eligibility_gates_fp16_peak(self):
        fast = _layer_time(_gemm_layer(tc=True), 1, True, RTX_A6000)
        slow = _layer_time(_gemm_layer(tc=False), 1, True, RTX_A6000)
        assert slow.compute > fast.compute

    def test_launch_overhead_batch_independent(self):
        layer = _gemm_layer()
        t1 = _layer_time(layer, 1, True, RTX_A6000)
        t64 = _layer_time(layer, 64, True, RTX_A6000)
        assert t1.launch == t64.launch

    def test_utilization_exponent(self):
        low = _layer_time(_gemm_layer(util=0.01), 1, False, RTX_A6000)
        high = _layer_time(_gemm_layer(util=1.0), 1, False, RTX_A6000)
        expected = (1.0 / 0.01) ** RTX_A6000.util_exponent
        assert low.compute / high.compute == pytest.approx(expected, rel=1e-6)


class TestDeviceVariations:
    def test_faster_device_faster_model(self):
        trace = ModelTrace("m", [_gemm_layer()])
        doubled = dataclasses.replace(
            RTX_A6000, fp16_tc_tflops=2 * RTX_A6000.fp16_tc_tflops
        )
        assert estimate_throughput(trace, 8, True, doubled) > estimate_throughput(
            trace, 8, True, RTX_A6000
        )

    def test_zero_launch_overhead_removes_saturation(self):
        trace = ModelTrace("m", [_gemm_layer()])
        no_launch = dataclasses.replace(RTX_A6000, launch_overhead_us=0.0)
        t1 = estimate_throughput(trace, 1, True, no_launch)
        t64 = estimate_throughput(trace, 64, True, no_launch)
        assert t64 == pytest.approx(t1, rel=1e-6)  # purely linear scaling


class TestTraceBatchInvariance:
    def test_trace_is_batch1_normalized(self, rng):
        """Stats are per batch element; the roofline applies the batch."""

        model = nn.Sequential(nn.Conv2d(2, 4, 3, padding=1), nn.ReLU())
        trace = trace_model(model, (2, 8, 8))
        flops_elem = trace.total_flops
        # A hand count: conv 2*4*8*8*2*9 + relu 2*(4*8*8)
        assert flops_elem == pytest.approx(2 * (4 * 8 * 8) * 2 * 9 + 2 * (4 * 8 * 8))

    def test_throughput_positive_for_all_batches(self, rng):
        model = nn.Sequential(nn.Conv2d(1, 2, 3, padding=1))
        trace = trace_model(model, (1, 6, 6))
        for b in (1, 3, 17, 96):
            assert estimate_throughput(trace, b) > 0
