"""FLOP tracing and the A6000 roofline model (Figure 6 reproduction)."""

import numpy as np
import pytest

from repro import nn
from repro.core import build_model
from repro.perf import (
    RTX_A6000,
    estimate_throughput,
    estimate_time,
    measure_encoder_throughput,
    speedup_half,
    throughput_curve,
    trace_encoder,
    trace_model,
)


@pytest.fixture(scope="module")
def traces():
    out = {}
    for name in ("bcae_2d", "bcae_pp", "bcae_ht"):
        model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)
        out[name] = trace_encoder(model, (16, 192, 256), name=name)
    return out


class TestTracing:
    def test_conv_flops_hand_count(self):
        """One conv: FLOPs = 2 · out_elems · in_ch · kernel_volume."""

        conv = nn.Conv2d(3, 8, 5, padding=2)
        trace = trace_model(conv, (3, 10, 12))
        assert len(trace.layers) == 1
        assert trace.layers[0].flops == pytest.approx(2 * (8 * 10 * 12) * 3 * 25)

    def test_sequential_collects_all_leaves(self):
        model = nn.Sequential(nn.Conv2d(1, 4, 3, padding=1), nn.ReLU(), nn.AvgPool2d(2))
        trace = trace_model(model, (1, 8, 8))
        assert [l.kind for l in trace.layers] == ["Conv2d", "ReLU", "AvgPool2d"]

    def test_tracer_cleared_after_trace(self):
        trace_model(nn.ReLU(), (4,))
        assert nn.Module._tracer is None

    def test_tc_eligibility_rule(self, traces):
        """Fig. 6D: BCAE-HT has (almost) no Tensor-Core-eligible FLOPs."""

        assert traces["bcae_ht"].tc_fraction() < 0.10
        assert traces["bcae_2d"].tc_fraction() > 0.95
        assert traces["bcae_pp"].tc_fraction() > 0.80

    def test_flop_ordering(self, traces):
        """BCAE++ is the heaviest encoder; BCAE-HT the lightest."""

        assert (
            traces["bcae_pp"].total_flops
            > traces["bcae_2d"].total_flops
            > traces["bcae_ht"].total_flops
        )

    def test_ht_flops_tiny(self, traces):
        assert traces["bcae_ht"].total_flops < 0.1 * traces["bcae_pp"].total_flops


class TestRoofline:
    def test_throughput_ordering_matches_table1(self, traces):
        """Table 1 (half precision): BCAE-2D > BCAE-HT > BCAE++."""

        t = {n: estimate_throughput(tr, 64, half=True) for n, tr in traces.items()}
        assert t["bcae_2d"] > t["bcae_ht"] > t["bcae_pp"]

    def test_throughput_within_2x_of_paper(self, traces):
        paper = {"bcae_2d": 6900.0, "bcae_pp": 2600.0, "bcae_ht": 4600.0}
        for name, target in paper.items():
            ours = estimate_throughput(traces[name], 64, half=True)
            assert 0.5 < ours / target < 2.0, name

    def test_half_speedup_for_tc_models(self, traces):
        """§3.4: 76–79% fp16 gain for BCAE-2D and BCAE++…"""

        assert 1.5 < speedup_half(traces["bcae_2d"]) < 2.2
        assert 1.4 < speedup_half(traces["bcae_pp"]) < 2.2

    def test_no_half_speedup_for_ht(self, traces):
        """…and (Fig. 6C/D) essentially none for BCAE-HT."""

        assert speedup_half(traces["bcae_ht"]) < 1.15

    def test_curve_saturates(self, traces):
        """Fig. 6A-C shape: throughput rises with batch and saturates."""

        curve = throughput_curve(traces["bcae_2d"], batch_sizes=(1, 4, 16, 64, 96))
        values = list(curve.values())
        assert all(b >= a * 0.98 for a, b in zip(values, values[1:]))  # monotone-ish
        gain_low = curve[4] / curve[1]
        gain_high = curve[96] / curve[64]
        assert gain_low > gain_high  # diminishing returns = saturation

    def test_estimate_time_layers_sum(self, traces):
        total, layers = estimate_time(traces["bcae_ht"], 8)
        assert total == pytest.approx(sum(l.total for l in layers))

    def test_device_spec_datasheet_values(self):
        assert RTX_A6000.fp32_tflops == pytest.approx(38.7)
        assert RTX_A6000.fp16_tc_tflops == pytest.approx(154.8)
        assert RTX_A6000.mem_bw_gbs == pytest.approx(768.0)


class TestMeasuredTiming:
    def test_measure_runs_and_is_positive(self):
        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        r = measure_encoder_throughput(model, (16, 24, 32), batch_size=2, repeats=1)
        assert r.wedges_per_second > 0
        assert r.batch_size == 2

    def test_best_of_n_reporting(self):
        """Headline numbers are best-of-N; the mean rides along and can only
        be slower (GC/allocator noise adds, never subtracts)."""

        model = build_model("bcae_ht", wedge_spatial=(16, 24, 30), seed=0)
        r = measure_encoder_throughput(model, (16, 24, 32), batch_size=1, repeats=3)
        assert r.repeats == 3
        assert r.seconds_per_batch <= r.seconds_per_batch_mean
        assert r.wedges_per_second >= r.wedges_per_second_mean

    def test_throughput_from_batches(self):
        from repro.perf import throughput_from_batches

        tr = throughput_from_batches([4, 4, 2], [0.02, 0.03, 0.01], elapsed_s=0.1)
        assert tr.wedges_per_second == pytest.approx(100.0)
        assert tr.seconds_per_batch == pytest.approx(0.01)
        assert tr.seconds_per_batch_mean == pytest.approx(0.02)
        assert tr.repeats == 3
        with pytest.raises(ValueError):
            throughput_from_batches([], [], elapsed_s=1.0)
        with pytest.raises(ValueError):
            throughput_from_batches([1], [0.1], elapsed_s=0.0)

    def test_measured_2d_faster_than_pp_on_cpu(self):
        """The paper's headline 2D-vs-3D speedup also holds for our CPU kernels."""

        shape = (16, 48, 64)
        m2d = build_model("bcae_2d", wedge_spatial=(16, 48, 60), seed=0)
        mpp = build_model("bcae_pp", wedge_spatial=(16, 48, 60), seed=0)
        t2d = measure_encoder_throughput(m2d, shape, repeats=1).wedges_per_second
        tpp = measure_encoder_throughput(mpp, shape, repeats=1).wedges_per_second
        assert t2d > tpp
