"""ASCII visualization helpers."""

import numpy as np
import pytest

from repro.viz import (
    render_curves,
    render_difference,
    render_heatmap,
    render_histogram,
    render_wedge_layer,
)


class TestHeatmap:
    def test_dimensions(self, rng):
        out = render_heatmap(rng.random((100, 200)), width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)

    def test_small_input_not_upscaled(self, rng):
        out = render_heatmap(rng.random((3, 5)), width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(l) == 5 for l in lines)

    def test_intensity_mapping(self):
        img = np.array([[0.0, 1.0]])
        out = render_heatmap(img, width=2, height=1)
        assert out[0] == " " and out[-1] == "@"

    def test_constant_image(self):
        out = render_heatmap(np.ones((4, 4)), width=4, height=4)
        assert set(out.replace("\n", "")) == {" "}

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 2, 2)))

    def test_explicit_range(self):
        img = np.array([[5.0, 5.0]])
        out = render_heatmap(img, width=2, height=1, vmin=0.0, vmax=10.0)
        assert out[0] in "=-+"  # mid-ramp


class TestWedgeRenderers:
    def test_layer_selection(self, rng):
        wedge = rng.random((4, 16, 16))
        a = render_wedge_layer(wedge, layer=0, width=8, height=4)
        b = render_wedge_layer(wedge, layer=3, width=8, height=4)
        assert a != b

    def test_wedge_rank_check(self):
        with pytest.raises(ValueError):
            render_wedge_layer(np.zeros((4, 4)))

    def test_difference_zero_for_identical(self, rng):
        w = rng.random((2, 8, 8))
        out = render_difference(w, w, layer=0, width=8, height=4)
        assert set(out.replace("\n", "")) == {" "}

    def test_difference_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            render_difference(rng.random((2, 4, 4)), rng.random((2, 4, 5)))


class TestHistogram:
    def test_rows_and_bars(self):
        counts = np.array([100, 10, 1])
        edges = np.array([0.0, 1.0, 2.0, 3.0])
        out = render_histogram(counts, edges)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].count("#") > lines[1].count("#") > lines[2].count("#")

    def test_log_scale_compresses(self):
        counts = np.array([1000, 1])
        edges = np.array([0.0, 1.0, 2.0])
        log_out = render_histogram(counts, edges, log_scale=True)
        lin_out = render_histogram(counts, edges, log_scale=False)
        assert log_out.splitlines()[1].count("#") >= lin_out.splitlines()[1].count("#")

    def test_mismatched_edges(self):
        with pytest.raises(ValueError):
            render_histogram(np.array([1, 2]), np.array([0.0, 1.0]))


class TestCurves:
    def test_chart_structure(self):
        series = {
            "half": {1: 100.0, 2: 200.0, 4: 300.0},
            "full": {1: 50.0, 2: 90.0, 4: 120.0},
        }
        out = render_curves(series, width=20, height=8)
        lines = out.splitlines()
        assert lines[0].startswith("y: 0..300")
        assert "o=half" in lines[-1] and "x=full" in lines[-1]
        assert len(lines) == 1 + 8 + 1

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            render_curves({})
