"""Reconstruction metrics (paper §3.3 definitions)."""

import math

import numpy as np
import pytest

from repro.metrics import (
    ReconstructionMetrics,
    evaluate_reconstruction,
    mae,
    mse,
    occupancy,
    precision_recall,
    psnr,
)


class TestPointMetrics:
    def test_mae_handcrafted(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.5, 2.0, 1.0])
        assert mae(a, b) == pytest.approx((0.5 + 0 + 2) / 3)

    def test_mse_handcrafted(self):
        a = np.array([0.0, 2.0])
        b = np.array([1.0, 0.0])
        assert mse(a, b) == pytest.approx((1 + 4) / 2)

    def test_psnr_definition(self):
        a = np.array([5.0, 5.0])
        b = np.array([4.0, 6.0])  # MSE = 1
        assert psnr(a, b, peak=10.0) == pytest.approx(10 * math.log10(100.0))

    def test_psnr_perfect_is_inf(self):
        a = np.ones(4)
        assert psnr(a, a) == math.inf

    def test_psnr_decreases_with_error(self):
        truth = np.zeros(100)
        small = truth + 0.1
        large = truth + 1.0
        assert psnr(small, truth) > psnr(large, truth)

    def test_occupancy(self):
        assert occupancy(np.array([0, 1, 0, 2])) == pytest.approx(0.5)


class TestPrecisionRecall:
    def test_paper_definitions(self):
        """§3.3: positives are truth > 6; predictions are seg > h."""

        seg = np.array([0.9, 0.9, 0.1, 0.9])
        truth = np.array([7.0, 0.0, 7.0, 8.0])
        p, r = precision_recall(seg, truth, threshold=0.5)
        # predicted: [T, T, F, T]; positive: [T, F, T, T] -> tp=2
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)

    def test_perfect_classifier(self):
        truth = np.array([7.0, 0.0, 9.0])
        seg = (truth > 6).astype(float)
        assert precision_recall(seg, truth) == (1.0, 1.0)

    def test_empty_predictions(self):
        p, r = precision_recall(np.zeros(4), np.array([7.0, 7.0, 0.0, 0.0]))
        assert p == 0.0 and r == 0.0

    def test_no_positives(self):
        p, r = precision_recall(np.ones(3), np.zeros(3))
        assert r == 0.0


class TestBundle:
    def test_evaluate_reconstruction(self, rng):
        truth = np.zeros((4, 5), dtype=np.float32)
        truth[0, :] = 7.0
        seg = (truth > 6).astype(np.float32) * 0.9
        recon = truth + 0.1 * (truth > 0)
        m = evaluate_reconstruction(recon, seg, truth)
        assert m.precision == 1.0 and m.recall == 1.0
        assert m.mae == pytest.approx(0.1 * 5 / 20, rel=1e-5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate_reconstruction(np.zeros(3), np.zeros(3), np.zeros(4))

    def test_as_dict_and_str(self):
        m = ReconstructionMetrics(mae=0.1, psnr=20.0, precision=0.9, recall=0.8, mse=0.02)
        d = m.as_dict()
        assert set(d) == {"mae", "psnr", "precision", "recall", "mse"}
        assert "MAE=0.1000" in str(m)
