"""Training loop integration: the paper's procedure at tiny scale."""

import numpy as np
import pytest

from repro.core import build_model
from repro.train import TrainConfig, Trainer, evaluate_model


@pytest.fixture(scope="module")
def trained(tiny_train_module):
    train = tiny_train_module
    model = build_model(
        "bcae_2d", wedge_spatial=train.geometry.wedge_shape, m=2, n=2, d=2, seed=0
    )
    cfg = TrainConfig(epochs=3, batch_size=4, warmup_epochs=1, decay_every=1)
    trainer = Trainer(model, cfg)
    trainer.fit(train)
    return trainer


@pytest.fixture(scope="module")
def tiny_train_module():
    from repro.tpc import TINY_GEOMETRY, generate_wedge_dataset

    train, _test = generate_wedge_dataset(1, geometry=TINY_GEOMETRY, seed=3,
                                          test_fraction=0.0)
    return train


class TestTrainingRun:
    def test_history_length(self, trained):
        assert len(trained.history) == 3

    def test_losses_decrease(self, trained):
        hist = trained.history
        assert hist[-1].seg_loss < hist[0].seg_loss
        assert hist[-1].reg_loss < hist[0].reg_loss

    def test_lr_schedule_applied(self, trained):
        lrs = [h.lr for h in trained.history]
        assert lrs[0] == pytest.approx(1e-3)
        assert lrs[-1] < lrs[0]  # decay kicked in after warmup

    def test_balancer_coefficient_tracked(self, trained):
        assert trained.history[0].coefficient == pytest.approx(
            0.5 * 2000 + 1.5 * trained.history[0].reg_loss / trained.history[0].seg_loss,
            rel=1e-5,
        )

    def test_model_left_in_eval_mode(self, trained):
        assert not trained.model.training


class TestEvaluation:
    def test_metrics_shape_contract(self, trained, tiny_train_module):
        m = trained.evaluate(tiny_train_module)
        assert 0.0 <= m.precision <= 1.0
        assert 0.0 <= m.recall <= 1.0
        assert m.mae >= 0.0
        assert np.isfinite(m.psnr)

    def test_training_beats_untrained(self, trained, tiny_train_module):
        untrained = build_model(
            "bcae_2d",
            wedge_spatial=tiny_train_module.geometry.wedge_shape,
            m=2, n=2, d=2, seed=99,
        )
        before = evaluate_model(untrained, tiny_train_module)
        after = trained.evaluate(tiny_train_module)
        assert after.mae < before.mae

    def test_half_precision_parity_after_training(self, trained, tiny_train_module):
        """Table 2: trained-model metrics match across precision modes."""

        full = trained.evaluate(tiny_train_module, half=False)
        half = trained.evaluate(tiny_train_module, half=True)
        assert half.mae == pytest.approx(full.mae, rel=0.05, abs=0.02)
        assert half.precision == pytest.approx(full.precision, abs=0.05)
        assert half.recall == pytest.approx(full.recall, abs=0.05)

    def test_max_batches_limits_work(self, trained, tiny_train_module):
        m = evaluate_model(trained.model, tiny_train_module, max_batches=1)
        assert np.isfinite(m.mae)


class TestConfig:
    def test_paper_presets(self):
        cfg3d = TrainConfig.paper_3d()
        assert (cfg3d.epochs, cfg3d.warmup_epochs, cfg3d.decay_every) == (1000, 100, 20)
        cfg2d = TrainConfig.paper_2d()
        assert (cfg2d.epochs, cfg2d.warmup_epochs, cfg2d.decay_every) == (500, 50, 10)

    def test_paper_optimizer_settings(self, tiny_train_module):
        model = build_model(
            "bcae_2d", wedge_spatial=tiny_train_module.geometry.wedge_shape,
            m=1, n=1, d=1, seed=0,
        )
        trainer = Trainer(model)
        assert trainer.optimizer.weight_decay == pytest.approx(0.01)
        assert (trainer.optimizer.beta1, trainer.optimizer.beta2) == (0.9, 0.999)
        assert trainer.balancer.coefficient == pytest.approx(2000.0)


class TestGradClipping:
    def test_clip_rescales_large_gradients(self):
        from repro.nn import Parameter
        from repro.train import clip_grad_norm

        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_clip_noop_below_threshold(self):
        from repro.nn import Parameter
        from repro.train import clip_grad_norm

        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clip_handles_missing_grads(self):
        from repro.nn import Parameter
        from repro.train import clip_grad_norm

        p = Parameter(np.zeros(2, dtype=np.float32))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_training_with_clipping_runs(self, tiny_train_module):
        model = build_model(
            "bcae_2d", wedge_spatial=tiny_train_module.geometry.wedge_shape,
            m=1, n=1, d=1, seed=0,
        )
        cfg = TrainConfig(epochs=1, batch_size=4, grad_clip=1.0)
        trainer = Trainer(model, cfg)
        hist = trainer.fit(tiny_train_module)
        assert np.isfinite(hist[0].seg_loss)
