"""The dynamic loss-balancing recurrence of paper §2.5."""

import pytest

from repro.train import LossBalancer


class TestRecurrence:
    def test_initial_coefficient_is_2000(self):
        """Paper: c₀ = 2000."""

        assert LossBalancer().coefficient == pytest.approx(2000.0)

    def test_update_formula(self):
        """c_{t+1} = 0.5·c_t + 1.5·(ρ_r/ρ_s)."""

        b = LossBalancer(c0=100.0)
        new = b.update(seg_loss=2.0, reg_loss=8.0)
        assert new == pytest.approx(0.5 * 100.0 + 1.5 * 4.0)

    def test_fixed_point(self):
        """Constant losses drive c to 3·ρ_r/ρ_s."""

        b = LossBalancer(c0=2000.0)
        for _ in range(200):
            b.update(seg_loss=1.0, reg_loss=10.0)
        assert b.coefficient == pytest.approx(b.fixed_point(1.0, 10.0), rel=1e-6)
        assert b.coefficient == pytest.approx(30.0, rel=1e-6)

    def test_decays_from_large_c0(self):
        """Starting at 2000 with O(1) loss ratio, c halves per epoch at first."""

        b = LossBalancer()
        first = b.update(1.0, 1.0)
        assert first == pytest.approx(0.5 * 2000 + 1.5)

    def test_combined_objective(self):
        b = LossBalancer(c0=10.0)
        assert b.combined(seg_loss=2.0, reg_loss=3.0) == pytest.approx(23.0)

    def test_zero_seg_loss_guarded(self):
        b = LossBalancer(c0=8.0)
        assert b.update(0.0, 5.0) == pytest.approx(4.0)

    def test_history_recorded(self):
        b = LossBalancer()
        b.update(1.0, 1.0)
        b.update(1.0, 1.0)
        assert len(b.history) == 3  # c0 + two updates
