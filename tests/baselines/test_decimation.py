"""The decimation (average-pool) baseline."""

import numpy as np
import pytest

from repro.baselines import DecimationCodec, evaluate_codec, fp16_ratio


class TestRoundTrip:
    def test_shape_preserved(self, rng):
        x = rng.random((2, 8, 16, 32)).astype(np.float32)
        codec = DecimationCodec((2, 2, 2))
        y = codec.decompress(codec.compress(x))
        assert y.shape == x.shape

    def test_constant_field_lossless_up_to_fp16(self):
        x = np.full((4, 8, 8), 7.0, dtype=np.float32)
        codec = DecimationCodec((2, 2, 2))
        y = codec.decompress(codec.compress(x))
        np.testing.assert_allclose(y, x, atol=4e-3)

    def test_blocks_reconstruct_block_means(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        codec = DecimationCodec((1, 2, 2))
        y = codec.decompress(codec.compress(x))
        assert y[0, 0, 0] == pytest.approx(x[0, :2, :2].mean(), abs=1e-2)

    def test_ratio_exact(self, rng):
        x = rng.random((8, 16, 32)).astype(np.float32)
        codec = DecimationCodec((2, 2, 2))
        payload = codec.compress(x)
        # 26 header bytes on a 1 KiB payload: ratio ≈ prod(factors) = 8.
        assert fp16_ratio(x, payload) == pytest.approx(codec.expected_ratio(), rel=0.05)

    def test_identity_factors(self, rng):
        x = rng.random((4, 4)).astype(np.float32)
        codec = DecimationCodec((1, 1))
        y = codec.decompress(codec.compress(x))
        np.testing.assert_allclose(y, x, atol=4e-3)  # fp16 storage only


class TestValidation:
    def test_indivisible_shape_raises(self, rng):
        with pytest.raises(ValueError):
            DecimationCodec((2, 2)).compress(rng.random((5, 4)).astype(np.float32))

    def test_rank_too_low_raises(self, rng):
        with pytest.raises(ValueError):
            DecimationCodec((2, 2, 2)).compress(rng.random((4, 4)).astype(np.float32))

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            DecimationCodec((0, 2))


class TestSparseBehaviour:
    def test_smears_sparse_boundaries(self, rng):
        """The naive fixed-rate failure mode in its purest form."""

        x = np.zeros((8, 16, 16), dtype=np.float32)
        mask = rng.random(x.shape) < 0.1
        x[mask] = rng.uniform(6.0, 10.0, int(mask.sum())).astype(np.float32)
        res = evaluate_codec(DecimationCodec((2, 2, 2)), x)
        assert res.ratio > 7.5
        # Zeros adjacent to hits become nonzero (smearing) -> poor precision.
        assert res.precision < 0.9
        assert res.mae > 0.1
