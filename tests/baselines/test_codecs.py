"""The three learning-free codecs: guarantees and sparse-data behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    MGARDLikeCodec,
    SZLikeCodec,
    ZFPLikeCodec,
    evaluate_codec,
    fp16_ratio,
)

_SETTINGS = dict(max_examples=15, deadline=None)


def _sparse_field(rng, shape=(8, 16, 20), occupancy=0.1):
    """TPC-like sparse field: zeros plus values in [6, 10]."""

    x = np.zeros(shape, dtype=np.float32)
    mask = rng.random(shape) < occupancy
    x[mask] = rng.uniform(6.03, 10.0, size=int(mask.sum())).astype(np.float32)
    return x


class TestSZLike:
    def test_roundtrip_shape_dtype(self, rng):
        x = _sparse_field(rng)
        codec = SZLikeCodec(0.25)
        y = codec.decompress(codec.compress(x))
        assert y.shape == x.shape and y.dtype == np.float32

    @settings(**_SETTINGS)
    @given(
        eb=st.sampled_from([0.1, 0.25, 0.5, 1.0]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_error_bound_property(self, eb, seed):
        """SZ's contract: every voxel within the absolute bound."""

        x = _sparse_field(np.random.default_rng(seed), shape=(6, 10, 12))
        codec = SZLikeCodec(eb)
        y = codec.decompress(codec.compress(x))
        assert float(np.abs(y - x).max()) <= eb * (1 + 1e-5)

    def test_sparser_data_compresses_better(self, rng):
        codec = SZLikeCodec(0.25)
        sparse = _sparse_field(rng, occupancy=0.02)
        dense = _sparse_field(rng, occupancy=0.5)
        assert len(codec.compress(sparse)) < len(codec.compress(dense))

    def test_larger_bound_smaller_payload(self, rng):
        x = _sparse_field(rng)
        assert len(SZLikeCodec(1.0).compress(x)) <= len(SZLikeCodec(0.1).compress(x))

    def test_all_zero_input(self):
        x = np.zeros((4, 8, 8), dtype=np.float32)
        codec = SZLikeCodec(0.25)
        y = codec.decompress(codec.compress(x))
        np.testing.assert_array_equal(y, x)

    def test_escape_path_for_extreme_values(self, rng):
        """Values far outside the symbol alphabet go through escapes."""

        x = _sparse_field(rng, shape=(4, 6, 8))
        x[0, 0, 0] = 1e7  # forces |residual| >= 2^15 at eb small
        codec = SZLikeCodec(0.01)
        y = codec.decompress(codec.compress(x))
        assert abs(y[0, 0, 0] - 1e7) <= 0.01 * (1 + 1e-5) * 1e7 or abs(y[0, 0, 0] - 1e7) <= 1.0

    def test_2d_input_supported(self, rng):
        x = _sparse_field(rng, shape=(32, 40))
        codec = SZLikeCodec(0.5)
        y = codec.decompress(codec.compress(x))
        assert float(np.abs(y - x).max()) <= 0.5 * (1 + 1e-5)


class TestZFPLike:
    def test_fixed_rate_exact(self, rng):
        """ZFP's contract: payload size known a priori from the rate."""

        x = _sparse_field(rng, shape=(8, 12, 16))
        codec = ZFPLikeCodec(rate_bits=2)
        payload = codec.compress(x)
        n_blocks = (8 // 4) * (12 // 4) * (16 // 4)
        header = 1 + 3 * 4 + 1 + 8
        expected = header + n_blocks * 2 + (n_blocks * 64 * 2 + 7) // 8
        assert len(payload) == expected

    def test_rate_independent_of_content(self, rng):
        codec = ZFPLikeCodec(rate_bits=3)
        a = codec.compress(_sparse_field(rng, occupancy=0.01))
        b = codec.compress(_sparse_field(rng, occupancy=0.9))
        assert len(a) == len(b)  # fixed-rate: content cannot change the size

    def test_higher_rate_lower_error(self, rng):
        x = _sparse_field(rng)
        errs = []
        for rate in (1, 4, 8):
            codec = ZFPLikeCodec(rate)
            y = codec.decompress(codec.compress(x))
            errs.append(float(np.abs(y - x).mean()))
        assert errs[0] > errs[1] > errs[2]

    def test_roundtrip_nonmultiple_of_4(self, rng):
        x = _sparse_field(rng, shape=(5, 9, 11))
        codec = ZFPLikeCodec(4)
        y = codec.decompress(codec.compress(x))
        assert y.shape == x.shape

    def test_smooth_data_reconstructs_well(self):
        """On the smooth fields ZFP targets, low rates already do fine."""

        g = np.indices((8, 8, 8)).sum(axis=0).astype(np.float32) / 21.0
        codec = ZFPLikeCodec(8)
        y = codec.decompress(codec.compress(g))
        # fp16 block scales cap the precision of the 8-bit-coefficient path.
        assert float(np.abs(y - g).mean()) < 0.02

    def test_sparse_data_rings(self, rng):
        """The paper's §1 argument: sharp sparse fields defeat block codecs."""

        x = _sparse_field(rng, occupancy=0.1)
        codec = ZFPLikeCodec(2)
        y = codec.decompress(codec.compress(x))
        zero_sites = x == 0
        # Reconstruction leaks energy into empty voxels (ringing).
        assert float(np.abs(y[zero_sites]).max()) > 0.5

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ZFPLikeCodec(0)

    def test_expected_ratio_formula(self):
        codec = ZFPLikeCodec(2)
        assert codec.expected_ratio() == pytest.approx(16.0 / 2.25)


class TestMGARDLike:
    @settings(**_SETTINGS)
    @given(
        eb=st.sampled_from([0.25, 0.5, 1.0]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_error_bound_property(self, eb, seed):
        """The telescoping budgets must respect the global L∞ bound."""

        x = _sparse_field(np.random.default_rng(seed), shape=(8, 12, 16))
        codec = MGARDLikeCodec(eb)
        y = codec.decompress(codec.compress(x))
        assert float(np.abs(y - x).max()) <= eb * (1 + 1e-4)

    def test_roundtrip_odd_shapes(self, rng):
        x = _sparse_field(rng, shape=(9, 13, 17))
        codec = MGARDLikeCodec(0.5)
        y = codec.decompress(codec.compress(x))
        assert y.shape == x.shape
        assert float(np.abs(y - x).max()) <= 0.5 * (1 + 1e-4)

    def test_level_planning_respects_min_size(self):
        deep = MGARDLikeCodec(0.5, n_levels=10)
        assert deep._plan_levels((8, 8, 8)) <= 1  # coarsest grid keeps >= 4/axis
        assert deep._plan_levels((64, 64, 64)) == 4
        capped = MGARDLikeCodec(0.5, n_levels=3)
        assert capped._plan_levels((64, 64, 64)) == 3

    def test_smooth_beats_sparse_in_ratio(self, rng):
        """Multigrid pays off on smooth fields, not on sparse TPC data."""

        codec = MGARDLikeCodec(0.25)
        smooth = np.indices((16, 16, 16)).sum(axis=0).astype(np.float32) / 5.0
        sparse = _sparse_field(rng, shape=(16, 16, 16))
        r_smooth = fp16_ratio(smooth, codec.compress(smooth))
        r_sparse = fp16_ratio(sparse, codec.compress(sparse))
        assert r_smooth > r_sparse

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            MGARDLikeCodec(0.0)


class TestEvaluateHarness:
    def test_result_fields(self, rng):
        x = _sparse_field(rng)
        res = evaluate_codec(SZLikeCodec(0.25), x)
        assert res.ratio > 1.0
        assert res.max_error <= 0.25 * (1 + 1e-5)
        assert 0.0 <= res.precision <= 1.0
        assert "sz_like" in res.row()

    def test_bcae_dominates_baselines_at_its_ratio(self, rng):
        """§1 claim, mechanically: no baseline reaches ratio ≥ 31 with

        sub-0.5 MAE on sparse TPC-like data (the trained BCAE does — see
        benchmarks/bench_baselines.py for the full comparison).
        """

        x = _sparse_field(rng, shape=(16, 24, 32))
        for codec in (SZLikeCodec(1.0), MGARDLikeCodec(1.0), ZFPLikeCodec(1)):
            res = evaluate_codec(codec, x)
            assert not (res.ratio >= 31.0 and res.mae <= 0.5), codec.name
