"""Bitstream, Huffman, quantizer and Lorenzo substrate (with hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BitReader,
    ErrorBoundedQuantizer,
    UniformQuantizer,
    build_huffman,
    huffman_decode,
    huffman_encode,
    lorenzo_forward,
    lorenzo_inverse,
    pack_codes,
    unpack_bits,
)

_SETTINGS = dict(max_examples=30, deadline=None)


class TestBitstream:
    def test_pack_unpack_roundtrip(self, rng):
        codes = rng.integers(0, 2**10, size=100)
        lengths = np.full(100, 10)
        payload, n_bits = pack_codes(codes, lengths)
        assert n_bits == 1000
        bits = unpack_bits(payload, n_bits)
        got = BitReader(bits).read_fixed_array(100, 10)
        np.testing.assert_array_equal(got, codes.astype(np.uint64))

    def test_variable_lengths(self):
        codes = np.array([1, 5, 0])
        lengths = np.array([1, 3, 2])
        payload, n_bits = pack_codes(codes, lengths)
        assert n_bits == 6
        bits = unpack_bits(payload, n_bits)
        np.testing.assert_array_equal(bits, [1, 1, 0, 1, 0, 0])

    def test_empty(self):
        payload, n_bits = pack_codes(np.array([]), np.array([]))
        assert payload == b"" and n_bits == 0

    def test_reader_sequential(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        r = BitReader(bits)
        assert r.read(3) == 0b101
        assert r.read(4) == 0b1001
        with pytest.raises(EOFError):
            r.read(1)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1, 2]), np.array([1]))

    @settings(**_SETTINGS)
    @given(
        values=st.lists(st.integers(0, 255), min_size=1, max_size=200),
        width=st.integers(8, 16),
    )
    def test_fixed_width_roundtrip_property(self, values, width):
        codes = np.array(values, dtype=np.uint64)
        payload, n_bits = pack_codes(codes, np.full(len(values), width))
        got = BitReader(unpack_bits(payload, n_bits)).read_fixed_array(len(values), width)
        np.testing.assert_array_equal(got, codes)


class TestHuffman:
    def test_roundtrip_skewed(self, rng):
        syms = np.minimum(rng.geometric(0.4, size=5000) - 1, 30)
        code = build_huffman(np.bincount(syms, minlength=40))
        payload, n_bits = huffman_encode(syms, code)
        decoded, pos = huffman_decode(unpack_bits(payload, n_bits), syms.size, code)
        np.testing.assert_array_equal(decoded, syms)
        assert pos == n_bits

    def test_compresses_skewed_near_entropy(self, rng):
        syms = np.minimum(rng.geometric(0.5, size=20000) - 1, 15)
        freqs = np.bincount(syms, minlength=16)
        p = freqs[freqs > 0] / freqs.sum()
        entropy = float(-(p * np.log2(p)).sum())
        code = build_huffman(freqs)
        _payload, n_bits = huffman_encode(syms, code)
        assert n_bits / syms.size < entropy + 1.0  # Huffman ≤ H + 1

    def test_single_symbol_alphabet(self):
        syms = np.zeros(10, dtype=np.int64)
        code = build_huffman(np.array([10]))
        payload, n_bits = huffman_encode(syms, code)
        decoded, _ = huffman_decode(unpack_bits(payload, n_bits), 10, code)
        np.testing.assert_array_equal(decoded, syms)

    def test_unknown_symbol_raises(self):
        code = build_huffman(np.array([5, 5, 0]))
        with pytest.raises(ValueError):
            huffman_encode(np.array([2]), code)

    def test_max_length_respected(self, rng):
        # Exponentially exploding frequencies force deep trees without a cap.
        freqs = np.array([2**i for i in range(40)], dtype=np.float64)
        code = build_huffman(freqs, max_length=16)
        assert code.max_length <= 16

    @settings(**_SETTINGS)
    @given(
        data=st.lists(st.integers(0, 7), min_size=1, max_size=500),
    )
    def test_roundtrip_property(self, data):
        syms = np.array(data, dtype=np.int64)
        code = build_huffman(np.bincount(syms, minlength=8))
        payload, n_bits = huffman_encode(syms, code)
        decoded, _ = huffman_decode(unpack_bits(payload, n_bits), syms.size, code)
        np.testing.assert_array_equal(decoded, syms)


class TestQuantizers:
    @settings(**_SETTINGS)
    @given(
        eb=st.floats(0.01, 2.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_error_bound_property(self, eb, seed):
        """The defining guarantee: |x - dequant(quant(x))| ≤ eb (+1 fp32 ulp)."""

        x = np.random.default_rng(seed).uniform(-100, 100, size=256).astype(np.float32)
        q = ErrorBoundedQuantizer(eb)
        err = np.abs(q.roundtrip(x).astype(np.float64) - x)
        ulp = float(np.abs(x).max()) * 2.0**-23
        assert float(err.max()) <= eb * (1 + 1e-5) + ulp

    def test_zero_maps_to_zero(self):
        q = ErrorBoundedQuantizer(0.5)
        assert q.roundtrip(np.zeros(4, dtype=np.float32)).sum() == 0.0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            ErrorBoundedQuantizer(0.0)

    def test_uniform_quantizer_bound(self, rng):
        x = rng.uniform(-3, 3, size=128).astype(np.float32)
        q = UniformQuantizer(amax=3.0, bits=6)
        err = np.abs(q.dequantize(q.quantize(x)) - x)
        assert float(err.max()) <= q.max_error * (1 + 1e-5)

    def test_uniform_quantizer_bits_range(self):
        with pytest.raises(ValueError):
            UniformQuantizer(1.0, 0)


class TestLorenzo:
    @settings(**_SETTINGS)
    @given(
        shape=st.sampled_from([(7,), (5, 6), (3, 4, 5), (2, 3, 4, 3)]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_exact_inverse_property(self, shape, seed):
        q = np.random.default_rng(seed).integers(-1000, 1000, size=shape)
        np.testing.assert_array_equal(lorenzo_inverse(lorenzo_forward(q)), q)

    def test_constant_field_residual_is_sparse(self):
        """A constant field has nonzero residual only at the corner."""

        q = np.full((4, 5, 6), 7, dtype=np.int64)
        r = lorenzo_forward(q)
        assert r[0, 0, 0] == 7
        assert np.count_nonzero(r) == 1

    def test_zeros_stay_zeros(self):
        """Sparse-data behaviour: empty regions cost nothing after Lorenzo."""

        q = np.zeros((6, 6), dtype=np.int64)
        assert np.count_nonzero(lorenzo_forward(q)) == 0

    def test_linear_ramp_residual(self):
        q = np.arange(8, dtype=np.int64)
        r = lorenzo_forward(q)
        np.testing.assert_array_equal(r, [0, 1, 1, 1, 1, 1, 1, 1])
