"""Failure injection: corrupted payloads must fail loudly, not silently."""

import numpy as np
import pytest

from repro.baselines import MGARDLikeCodec, SZLikeCodec, ZFPLikeCodec


@pytest.fixture()
def field(rng):
    x = np.zeros((6, 8, 12), dtype=np.float32)
    mask = rng.random(x.shape) < 0.15
    x[mask] = rng.uniform(6.0, 10.0, size=int(mask.sum())).astype(np.float32)
    return x


_CODECS = [SZLikeCodec(0.25), ZFPLikeCodec(2), MGARDLikeCodec(0.5)]


class TestCorruption:
    @pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
    def test_truncated_payload_raises(self, codec, field):
        payload = codec.compress(field)
        with pytest.raises(Exception):
            codec.decompress(payload[: len(payload) // 3])

    @pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
    def test_empty_payload_raises(self, codec):
        with pytest.raises(Exception):
            codec.decompress(b"")

    @pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
    def test_roundtrip_is_not_affected_by_payload_copy(self, codec, field):
        """Payloads are plain bytes: copying/reslicing must be safe."""

        payload = bytes(bytearray(codec.compress(field)))
        a = codec.decompress(payload)
        b = codec.decompress(payload)
        np.testing.assert_array_equal(a, b)

    def test_sz_header_shape_tamper_detected_or_contained(self, field):
        """Flipping a shape byte must not return a silently wrong-shaped array."""

        codec = SZLikeCodec(0.5)
        payload = bytearray(codec.compress(field))
        payload[1] ^= 0xFF  # first shape byte
        try:
            out = codec.decompress(bytes(payload))
        except Exception:
            return  # loud failure is acceptable
        assert out.shape != field.shape  # if it decodes, the tamper is visible


class TestEdgeInputs:
    @pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
    def test_single_voxel_array(self, codec):
        x = np.array([[[7.5]]], dtype=np.float32)
        y = codec.decompress(codec.compress(x))
        assert y.shape == x.shape

    @pytest.mark.parametrize("codec", [SZLikeCodec(0.25), MGARDLikeCodec(0.5)],
                             ids=lambda c: c.name)
    def test_constant_field(self, codec):
        x = np.full((8, 8, 8), 7.0, dtype=np.float32)
        y = codec.decompress(codec.compress(x))
        eb = 0.25 if "sz" in codec.name else 0.5
        assert np.abs(y - x).max() <= eb * (1 + 1e-5)

    @pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
    def test_negative_values_supported(self, codec, rng):
        x = rng.normal(size=(8, 8, 8)).astype(np.float32)
        y = codec.decompress(codec.compress(x))
        assert y.shape == x.shape
