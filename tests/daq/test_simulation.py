"""Streaming-DAQ queueing simulation: conservation and queueing laws."""

import numpy as np
import pytest

from repro.daq import (
    SPHENIX_FRAME_RATE_HZ,
    WEDGES_PER_FRAME,
    DAQConfig,
    StreamingCompressionSim,
    gpus_required,
)


def _run(rate_mult: float, **kwargs) -> "DAQStats":
    """Simulate with service capacity = rate_mult × offered rate."""

    offered = 1000.0 * WEDGES_PER_FRAME  # 1 kHz frames for fast tests
    cfg = DAQConfig(
        frame_rate_hz=1000.0,
        server_rate_wps=offered * rate_mult,
        n_servers=1,
        **kwargs,
    )
    return StreamingCompressionSim(cfg, seed=1).run(n_frames=1500)


class TestConservation:
    def test_wedges_conserved(self):
        stats = _run(1.5)
        assert stats.completed_wedges + stats.dropped_wedges == stats.offered_wedges

    def test_underload_no_drops(self):
        stats = _run(2.0)
        assert stats.dropped_wedges == 0

    def test_overload_drops_with_finite_buffer(self):
        stats = _run(0.5, buffer_wedges=64)
        assert stats.drop_fraction > 0.3  # half the capacity is missing

    def test_deterministic_given_seed(self):
        cfg = DAQConfig(frame_rate_hz=1000.0, server_rate_wps=30000.0)
        a = StreamingCompressionSim(cfg, seed=3).run(500)
        b = StreamingCompressionSim(cfg, seed=3).run(500)
        assert a.mean_latency == b.mean_latency


class TestQueueingBehaviour:
    def test_utilization_tracks_load(self):
        lo = _run(4.0)
        hi = _run(1.25)
        assert lo.utilization < hi.utilization
        assert hi.utilization < 1.01

    def test_latency_grows_toward_saturation(self):
        fast = _run(4.0)
        slow = _run(1.1)
        assert slow.mean_latency > fast.mean_latency
        assert slow.p99_latency >= slow.mean_latency

    def test_periodic_arrivals_have_lower_latency_variance(self):
        """D/D/1 beats M/D/1 at equal load (no arrival bursts)."""

        offered = 1000.0 * WEDGES_PER_FRAME
        base = dict(frame_rate_hz=1000.0, server_rate_wps=offered * 1.3, n_servers=1)
        poisson = StreamingCompressionSim(DAQConfig(**base, periodic=False), seed=2).run(1500)
        periodic = StreamingCompressionSim(DAQConfig(**base, periodic=True), seed=2).run(1500)
        assert periodic.p99_latency <= poisson.p99_latency

    def test_more_servers_reduce_latency(self):
        offered = 1000.0 * WEDGES_PER_FRAME
        one = DAQConfig(frame_rate_hz=1000.0, server_rate_wps=offered * 1.2, n_servers=1)
        two = DAQConfig(frame_rate_hz=1000.0, server_rate_wps=offered * 0.6, n_servers=2)
        a = StreamingCompressionSim(one, seed=5).run(1500)
        b = StreamingCompressionSim(two, seed=5).run(1500)
        # Same aggregate capacity: pooled servers smooth bursts similarly;
        # latency should be within the same order (sanity of c-server path).
        assert b.mean_latency < a.mean_latency * 5


class TestWedgeStream:
    """The arrival process exposed as an iterator (serving bridge)."""

    def _wedges(self, n=7):
        rng = np.random.default_rng(0)
        return rng.integers(0, 1024, size=(n, 2, 3, 4)).astype(np.uint16)

    def test_emits_every_wedge_once_by_default(self):
        sim = StreamingCompressionSim(DAQConfig(frame_rate_hz=1000.0, wedges_per_frame=3), seed=0)
        wedges = self._wedges(7)
        items = list(sim.wedge_stream(wedges))
        assert len(items) == 7
        for i, (_t, w) in enumerate(items):
            np.testing.assert_array_equal(w, wedges[i])

    def test_arrival_times_monotone_and_frame_grouped(self):
        sim = StreamingCompressionSim(DAQConfig(frame_rate_hz=1000.0, wedges_per_frame=3), seed=0)
        times = [t for t, _w in sim.wedge_stream(self._wedges(9))]
        assert times == sorted(times)
        assert times[0] == times[1] == times[2]  # one frame = 3 jobs at one t

    def test_explicit_frames_cycle_wedges(self):
        sim = StreamingCompressionSim(DAQConfig(frame_rate_hz=1000.0, wedges_per_frame=2), seed=0)
        wedges = self._wedges(3)
        items = list(sim.wedge_stream(wedges, n_frames=4))
        assert len(items) == 8  # 4 frames x 2 jobs, cycling 3 wedges
        np.testing.assert_array_equal(items[3][1], wedges[3 % 3])

    def test_rejects_single_wedge(self):
        sim = StreamingCompressionSim(DAQConfig(), seed=0)
        with pytest.raises(ValueError):
            list(sim.wedge_stream(np.zeros((2, 3, 4))))

    def test_frame_times_match_run_statistics(self):
        """frame_times drives run(): periodic mode is an exact clock."""

        sim = StreamingCompressionSim(DAQConfig(frame_rate_hz=500.0, periodic=True), seed=0)
        t = sim.frame_times(5)
        np.testing.assert_allclose(t, np.arange(5) / 500.0)


class TestSizingArithmetic:
    def test_paper_rates(self):
        """77 kHz × 24 wedges = 1.848 M wedges/s offered per layer group."""

        assert SPHENIX_FRAME_RATE_HZ * WEDGES_PER_FRAME == pytest.approx(1.848e6)

    def test_gpus_required_ordering_matches_table1(self):
        """Faster encoders need fewer GPUs: 2D < HT < ++ (Table 1 rates)."""

        need = {name: gpus_required(rate) for name, rate in
                [("bcae_2d", 6900.0), ("bcae_ht", 4600.0), ("bcae_pp", 2600.0)]}
        assert need["bcae_2d"] < need["bcae_ht"] < need["bcae_pp"]

    def test_gpus_required_headroom(self):
        assert gpus_required(6900.0, headroom=1.0) < gpus_required(6900.0, headroom=1.5)

    def test_gpus_required_exact_value(self):
        # 1.848e6 * 1.2 / 6900 = 321.4 -> 322
        assert gpus_required(6900.0) == 322
