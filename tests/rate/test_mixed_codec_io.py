"""Mixed-codec batches through the archive layer: save/load, concat, split.

``concat_compressed`` / ``split_compressed`` must preserve and re-index
per-wedge codec records across arbitrary batch compositions — including
legacy-batch promotion, single-wedge batches and the empty batch.  The
n=0 decompress path in the tier is covered here too (it was a real bug:
``np.stack`` of an empty record list).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BCAECompressor
from repro.io import (
    concat_compressed,
    load_compressed,
    save_compressed,
    split_compressed,
)
from repro.rate import BCAE_CODEC_ID

from conftest import WEDGE_SPATIAL, make_mixed_wedges


class TestArchiveRoundTrip:
    def test_mixed_save_load_round_trip(
        self, adaptive, mixed_compressed, tmp_path
    ):
        path = save_compressed(mixed_compressed, tmp_path / "mixed.npz",
                               model_name="bcae_2d")
        loaded, name = load_compressed(path)
        assert name == "bcae_2d"
        assert loaded.codec_ids == mixed_compressed.codec_ids
        assert loaded.record_sizes == mixed_compressed.record_sizes
        assert bytes(loaded.payload) == bytes(mixed_compressed.payload)
        np.testing.assert_array_equal(
            adaptive.decompress(loaded), adaptive.decompress(mixed_compressed)
        )

    def test_decision_ledger_survives_the_archive(
        self, mixed_compressed, tmp_path
    ):
        path = save_compressed(mixed_compressed, tmp_path / "mixed.npz")
        loaded, _ = load_compressed(path)
        assert loaded.decisions == mixed_compressed.decisions

    def test_archive_is_versioned(self, mixed_compressed, tmp_path):
        path = save_compressed(mixed_compressed, tmp_path / "mixed.npz")
        with np.load(path) as data:
            assert int(data["format_version"][0]) == 2


class TestConcat:
    def test_concat_mixed_batches_reindexes(self, adaptive, mixed_wedges):
        a = adaptive.compress(mixed_wedges[:5])
        b = adaptive.compress(mixed_wedges[5:])
        cat = concat_compressed([a, b])
        assert cat.n_wedges == len(mixed_wedges)
        assert cat.codec_ids == a.codec_ids + b.codec_ids
        assert cat.record_sizes == a.record_sizes + b.record_sizes
        assert cat.decisions == a.decisions + b.decisions
        assert bytes(cat.payload) == bytes(a.payload) + bytes(b.payload)
        np.testing.assert_array_equal(
            adaptive.decompress(cat),
            np.concatenate([adaptive.decompress(a), adaptive.decompress(b)]),
        )

    def test_concat_promotes_legacy_batches(
        self, adaptive, small_model, mixed_wedges
    ):
        """legacy + mixed concatenates: the legacy batch becomes explicit
        all-BCAE records and both decode through the tier."""

        legacy = BCAECompressor(small_model, half=True).compress(
            mixed_wedges[6:9]
        )
        assert legacy.codec_ids is None
        mixed = adaptive.compress(mixed_wedges[:6])
        cat = concat_compressed([legacy, mixed])
        assert cat.codec_ids == (BCAE_CODEC_ID,) * 3 + mixed.codec_ids
        record = legacy.nbytes // legacy.n_wedges
        assert cat.record_sizes[:3] == (record,) * 3
        # Promoted wedges have no decisions; routed ones keep theirs.
        assert cat.decisions[:3] == (None,) * 3
        assert cat.decisions[3:] == mixed.decisions
        recon = adaptive.decompress(cat)
        np.testing.assert_array_equal(
            recon[:3], adaptive.decompress(legacy)
        )
        np.testing.assert_array_equal(
            recon[3:], adaptive.decompress(mixed)
        )

    def test_concat_single_wedge_batches(self, adaptive, mixed_wedges):
        singles = [adaptive.compress(w[None]) for w in mixed_wedges]
        cat = concat_compressed(singles)
        whole = adaptive.compress(mixed_wedges)
        assert cat.codec_ids == whole.codec_ids
        assert cat.record_sizes == whole.record_sizes
        assert bytes(cat.payload) == bytes(whole.payload)

    def test_concat_with_empty_batch(self, adaptive, mixed_wedges):
        empty = adaptive.compress(
            np.zeros((0,) + WEDGE_SPATIAL, dtype=np.uint16)
        )
        assert empty.n_wedges == 0
        assert empty.codec_ids == ()
        mixed = adaptive.compress(mixed_wedges[:4])
        cat = concat_compressed([empty, mixed, empty])
        assert cat.n_wedges == 4
        assert cat.codec_ids == mixed.codec_ids
        assert bytes(cat.payload) == bytes(mixed.payload)


class TestSplit:
    def test_split_then_reassemble_is_byte_exact(self, mixed_compressed):
        chunks = list(split_compressed(mixed_compressed, 5))
        assert [c.n_wedges for c in chunks] == [5, 5, 2]
        cat = concat_compressed(chunks)
        assert cat.codec_ids == mixed_compressed.codec_ids
        assert cat.record_sizes == mixed_compressed.record_sizes
        assert cat.decisions == mixed_compressed.decisions
        assert bytes(cat.payload) == bytes(mixed_compressed.payload)

    def test_split_chunks_decode_independently(
        self, adaptive, mixed_compressed
    ):
        whole = adaptive.decompress(mixed_compressed)
        parts = [adaptive.decompress(c)
                 for c in split_compressed(mixed_compressed, 4)]
        np.testing.assert_array_equal(np.concatenate(parts), whole)

    def test_split_to_single_wedges(self, adaptive, mixed_compressed):
        chunks = list(split_compressed(mixed_compressed, 1))
        assert len(chunks) == mixed_compressed.n_wedges
        for i, c in enumerate(chunks):
            assert c.n_wedges == 1
            assert c.codec_ids == (mixed_compressed.codec_ids[i],)
            assert c.record_sizes == (mixed_compressed.record_sizes[i],)
            assert len(bytes(c.payload)) == c.record_sizes[0]

    def test_split_empty_batch_yields_nothing(self, adaptive):
        empty = adaptive.compress(
            np.zeros((0,) + WEDGE_SPATIAL, dtype=np.uint16)
        )
        assert list(split_compressed(empty, 3)) == []

    def test_split_is_zero_copy(self, mixed_compressed):
        chunk = next(split_compressed(mixed_compressed, 4))
        assert isinstance(chunk.payload, memoryview)


class TestEmptyBatchEdges:
    def test_empty_batch_decompresses_to_zero_wedges(self, adaptive):
        """Regression: n=0 mixed decompress used to np.stack([]) and die."""

        empty = adaptive.compress(
            np.zeros((0,) + WEDGE_SPATIAL, dtype=np.uint16)
        )
        recon = adaptive.decompress(empty)
        assert recon.shape == (0,) + WEDGE_SPATIAL
        assert recon.dtype == np.float32

    def test_empty_batch_archives(self, adaptive, tmp_path):
        empty = adaptive.compress(
            np.zeros((0,) + WEDGE_SPATIAL, dtype=np.uint16)
        )
        path = save_compressed(empty, tmp_path / "empty.npz")
        loaded, _ = load_compressed(path)
        assert loaded.n_wedges == 0
        assert loaded.codec_ids == ()
        assert adaptive.decompress(loaded).shape == (0,) + WEDGE_SPATIAL

    def test_single_wedge_batch_round_trip(self, adaptive, tmp_path):
        one = adaptive.compress(make_mixed_wedges(1))  # the empty wedge
        assert one.n_wedges == 1
        assert one.codec_ids != (BCAE_CODEC_ID,)  # routed sparse
        path = save_compressed(one, tmp_path / "one.npz")
        loaded, _ = load_compressed(path)
        np.testing.assert_array_equal(
            adaptive.decompress(loaded), adaptive.decompress(one)
        )
