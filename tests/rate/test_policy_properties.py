"""Property tests of the selection policy and the adaptive round trip.

The three contracts the ISSUE names:

* **Determinism** — selection is a pure per-wedge function: the same
  wedge gets the same decision whether compressed alone, in a batch, or
  by an independently constructed policy instance.
* **BCAE byte identity** — records of BCAE-routed wedges are
  byte-identical to the all-BCAE path, across all four Table-1 models ×
  both precisions (the repo's batch-invariance property lifted through
  the tier).
* **Classical error bound** — classical-routed wedges reconstruct within
  the registry's documented log-scale bound, with zeros exact for the
  sparse coordinate-list codec.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.rate import (
    BCAE_CODEC_ID,
    SPARSE_CODEC_ID,
    AdaptiveCompressor,
    OccupancyPolicy,
    RateBudget,
    codec_error_bound,
    make_policy,
    wedge_features,
)
from repro.rate.records import record_views
from repro.tpc import log_transform

from conftest import SPARSE_INDICES, make_mixed_wedges


class TestDeterminism:
    def test_selection_is_batch_invariant(self, adaptive, mixed_wedges):
        """Whole-batch and one-wedge-at-a-time compressions agree exactly."""

        batch = adaptive.compress(mixed_wedges)
        singles = [adaptive.compress(w[None]) for w in mixed_wedges]
        assert batch.codec_ids == sum((s.codec_ids for s in singles), ())
        assert batch.decisions == sum((s.decisions for s in singles), ())
        assert bytes(batch.payload) == b"".join(
            bytes(s.payload) for s in singles
        )

    def test_independent_policies_agree(self, small_model, mixed_wedges):
        a = AdaptiveCompressor(
            BCAECompressor(small_model, half=True), make_policy("occupancy")
        )
        b = AdaptiveCompressor(
            BCAECompressor(small_model, half=True), make_policy("occupancy")
        )
        ca, cb = a.compress(mixed_wedges), b.compress(mixed_wedges)
        assert ca.decisions == cb.decisions
        assert bytes(ca.payload) == bytes(cb.payload)

    def test_expected_routing_of_the_mixed_stream(self, mixed_compressed):
        for i, codec_id in enumerate(mixed_compressed.codec_ids):
            expected = (SPARSE_CODEC_ID if i in SPARSE_INDICES
                        else BCAE_CODEC_ID)
            assert codec_id == expected, f"wedge {i}"

    def test_features_are_pure(self, mixed_wedges):
        for w in mixed_wedges:
            assert wedge_features(w) == wedge_features(np.array(w))

    def test_budget_fallback_is_deterministic(self, small_model, mixed_wedges):
        """A budget too tight for any sparse estimate still routes purely
        per wedge (argmin of the candidate estimates)."""

        tight = OccupancyPolicy(budget=RateBudget(0.001))
        a = AdaptiveCompressor(BCAECompressor(small_model, half=True), tight)
        c1, c2 = a.compress(mixed_wedges), a.compress(mixed_wedges)
        assert c1.codec_ids == c2.codec_ids
        assert c1.decisions == c2.decisions
        # The fallback picks the smaller estimate; for sparse wedges that
        # is still the classical codec, and the decision records both.
        for d in c1.decisions:
            assert d.est_bytes > 0

    def test_decision_ledger_records_actual_bytes(self, mixed_compressed):
        for d, size in zip(mixed_compressed.decisions,
                           mixed_compressed.record_sizes):
            assert d.actual_bytes == size


class TestBCAEByteIdentity:
    @pytest.mark.parametrize("name,kwargs", [
        ("bcae_2d", dict(m=2, n=2, d=2)),
        ("bcae_pp", {}),
        ("bcae_ht", {}),
        ("bcae", {}),
    ])
    @pytest.mark.parametrize("half", [True, False])
    def test_bcae_records_byte_identical_across_zoo(self, name, kwargs, half):
        """Routed-wedge records equal the all-BCAE payload, per model ×
        precision — and reconstruct to the same bytes."""

        wedges = make_mixed_wedges(6)
        model = build_model(name, wedge_spatial=wedges.shape[1:], seed=0,
                            **kwargs)
        model.eval()  # BatchNorm variants must not use batch statistics
        inner = BCAECompressor(model, half=half)
        adaptive = AdaptiveCompressor(
            BCAECompressor(model, half=half), make_policy("occupancy")
        )
        mixed = adaptive.compress(wedges)
        full = inner.compress(wedges)
        record = int(np.prod(full.code_shape)) * 2
        views = record_views(mixed)
        routed = [i for i, c in enumerate(mixed.codec_ids)
                  if c == BCAE_CODEC_ID]
        assert routed, "the mixed stream must route some wedges to the BCAE"
        payload = bytes(full.payload)
        for i in routed:
            assert bytes(views[i]) == payload[i * record:(i + 1) * record], (
                f"{name} half={half} wedge {i}"
            )
        # And the round trip through the tier matches the plain path on
        # exactly those wedges.
        recon = adaptive.decompress(mixed)
        reference = inner.decompress(full)
        np.testing.assert_array_equal(recon[routed], reference[routed])


class TestClassicalErrorBound:
    def test_sparse_records_respect_documented_bound(
        self, adaptive, mixed_wedges, mixed_compressed
    ):
        recon = adaptive.decompress(mixed_compressed)
        logged = log_transform(mixed_wedges)
        for i, codec_id in enumerate(mixed_compressed.codec_ids):
            if codec_id == BCAE_CODEC_ID:
                continue
            bound = codec_error_bound(codec_id)
            assert bound is not None
            err = float(np.abs(recon[i] - logged[i]).max())
            # One float32 ulp of slack on top of the exact-arithmetic
            # bound (see ErrorBoundedQuantizer's docstring).
            assert err <= bound * (1 + 1e-5) + 1e-6, f"wedge {i}"

    def test_sparse_codec_keeps_zeros_exact(
        self, adaptive, mixed_wedges, mixed_compressed
    ):
        recon = adaptive.decompress(mixed_compressed)
        for i, codec_id in enumerate(mixed_compressed.codec_ids):
            if codec_id == SPARSE_CODEC_ID:
                assert np.all(recon[i][mixed_wedges[i] == 0] == 0.0)

    def test_empty_wedge_record_is_tiny(self, mixed_compressed):
        # Wedge 0 is all-zero: its coordinate-list record is a bare
        # header, orders of magnitude below the BCAE record.
        bcae_record = max(mixed_compressed.record_sizes)
        assert mixed_compressed.record_sizes[0] < bcae_record // 10

    def test_decompress_adc_round_trip(self, adaptive, mixed_wedges):
        c = adaptive.compress(mixed_wedges)
        adc = adaptive.decompress_adc(c)
        assert adc.shape == mixed_wedges.shape
        assert adc.dtype == np.uint16
        # Empty wedge reconstructs empty through the sparse route.
        assert np.all(adc[0] == 0)
