"""Shared fixtures for the adaptive rate tier: fixed-RNG occupancy mix.

Every synthetic stream here is a pure function of a hard-coded seed —
``test_seed_determinism.py`` pins that property, and the serving-parity
tests depend on it (two independently built streams must route and
compress identically).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.rate import AdaptiveCompressor, make_policy

WEDGE_SPATIAL = (16, 24, 30)
MIXED_SEED = 7

#: Indices the mixed stream forces sparse (below the 5% default threshold).
SPARSE_INDICES = (0, 1, 5)


def make_mixed_wedges(n: int = 12, seed: int = MIXED_SEED) -> np.ndarray:
    """A fixed-RNG stream mixing dense, sparse and empty wedges."""

    rng = np.random.default_rng(seed)
    w = rng.integers(0, 1024, size=(n,) + WEDGE_SPATIAL).astype(np.uint16)
    w[w < 500] = 0              # dense majority (~51% occupancy)
    w[0] = 0                    # empty wedge
    for i in SPARSE_INDICES[1:]:
        if i >= n:
            continue
        mask = rng.random(WEDGE_SPATIAL) < 0.03   # ~3% occupancy
        hits = rng.integers(1, 1024, size=WEDGE_SPATIAL)
        w[i] = np.where(mask, hits, 0).astype(np.uint16)
    return w


@pytest.fixture(scope="module")
def small_model():
    model = build_model("bcae_2d", wedge_spatial=WEDGE_SPATIAL,
                        m=2, n=2, d=2, seed=0)
    model.eval()
    return model


@pytest.fixture(scope="module")
def mixed_wedges() -> np.ndarray:
    return make_mixed_wedges()


@pytest.fixture(scope="module")
def adaptive(small_model) -> AdaptiveCompressor:
    return AdaptiveCompressor(
        BCAECompressor(small_model, half=True), make_policy("occupancy")
    )


@pytest.fixture(scope="module")
def mixed_compressed(adaptive, mixed_wedges):
    return adaptive.compress(mixed_wedges)
