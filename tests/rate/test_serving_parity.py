"""Serving parity for the adaptive tier: every backend, same bytes.

Selection is a pure per-wedge function and the BCAE sub-batch path is
batch-composition independent, so the inline, thread, process (both
transports) and gateway paths must produce byte-identical archives *and*
identical :class:`RateDecision` ledgers — including after an injected
worker crash (the PR-8 SIGKILL hook).
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.rate import AdaptiveCompressor, make_policy
from repro.rate.records import is_record_frame, records_to_compressed
from repro.serve import (
    DecompressionService,
    GatewayConfig,
    ServiceConfig,
    ServingGateway,
    StreamingCompressionService,
    read_wedge_frame,
    write_wedge_frame,
)

from conftest import make_mixed_wedges


def _config(**overrides) -> ServiceConfig:
    base = dict(max_batch=4, rate_policy="occupancy")
    base.update(overrides)
    return ServiceConfig(**base)


def _flat(payloads):
    """(payload bytes, codec ids, decisions) of a served payload stream."""

    return (
        b"".join(bytes(p.payload) for p in payloads),
        sum((p.codec_ids for p in payloads), ()),
        sum((p.decisions for p in payloads), ()),
    )


@pytest.fixture(scope="module")
def model():
    m = build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2,
                    seed=0)
    m.eval()
    return m


@pytest.fixture(scope="module")
def wedges():
    return make_mixed_wedges(10)


@pytest.fixture(scope="module")
def inline_payloads(model, wedges):
    service = StreamingCompressionService(model, _config(workers=0))
    payloads, _ = service.run(wedges)
    return payloads


class TestBackendParity:
    def test_inline_reference_is_mixed(self, inline_payloads):
        _, codec_ids, decisions = _flat(inline_payloads)
        assert len(set(codec_ids)) > 1, "stream must exercise both routes"
        assert len(decisions) == len(codec_ids)

    def test_thread_backend_parity(self, model, wedges, inline_payloads):
        service = StreamingCompressionService(
            model, _config(workers=2, backend="thread")
        )
        payloads, _ = service.run(wedges)
        assert _flat(payloads) == _flat(inline_payloads)

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_process_backend_parity(
        self, model, wedges, inline_payloads, transport
    ):
        service = StreamingCompressionService(
            model, _config(workers=1, backend="process", transport=transport)
        )
        payloads, _ = service.run(wedges)
        assert _flat(payloads) == _flat(inline_payloads)

    def test_decompression_service_parity(self, model, wedges, inline_payloads):
        from repro.io import concat_compressed

        archive = concat_compressed(inline_payloads)
        reference = AdaptiveCompressor(
            BCAECompressor(model, half=True)
        ).decompress(archive)
        for backend, workers in (("thread", 0), ("thread", 2), ("process", 1)):
            service = DecompressionService(
                model, _config(workers=workers, backend=backend)
            )
            recons, _ = service.run(archive)
            np.testing.assert_array_equal(
                np.concatenate(recons), reference
            ), backend


class TestCrashRecoveryParity:
    def _kill_token(self, tmp_path, seq: int):
        path = tmp_path / "kill-token"
        path.write_text("")
        os.environ["REPRO_SERVE_KILL_FILE"] = str(path)
        os.environ["REPRO_SERVE_KILL_SEQ"] = str(seq)

    def _clear_token(self):
        os.environ.pop("REPRO_SERVE_KILL_FILE", None)
        os.environ.pop("REPRO_SERVE_KILL_SEQ", None)

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_sigkill_mid_stream_ledger_survives(
        self, model, wedges, inline_payloads, transport, tmp_path
    ):
        """A SIGKILLed worker is replaced and the retried unit reproduces
        the exact payload *and* RateDecision ledger of the inline path."""

        service = StreamingCompressionService(model, _config(
            workers=1, backend="process", transport=transport,
            max_retries=1, backoff_base_s=0.0,
        ))
        self._kill_token(tmp_path, seq=1)
        try:
            payloads, stats = service.run(wedges)
        finally:
            self._clear_token()
        assert _flat(payloads) == _flat(inline_payloads)
        killed = [r for r in stats.records if r.seq == 1][0]
        assert killed.attempts == 2
        assert stats.faults.crashes >= 1
        # Follow-up clean run on the rebuilt pool: still byte-identical.
        payloads, stats = service.run(wedges)
        assert _flat(payloads) == _flat(inline_payloads)
        assert stats.faults.crashes == 0


class TestGatewayParity:
    async def _produce(self, port, wedge_list):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            for w in wedge_list:
                write_wedge_frame(writer, w)
                await writer.drain()
            writer.write_eof()
            out = []
            while True:
                frame = await read_wedge_frame(reader)
                if frame is None:
                    return out
                out.append(frame)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def test_gateway_rebuilds_identical_archive_and_ledger(
        self, model, wedges, inline_payloads
    ):
        """Record frames over the socket rebuild a byte-identical archive
        and the full decision ledger, per producer."""

        services = [StreamingCompressionService(model, _config(workers=0))
                    for _ in range(2)]
        gateway = ServingGateway(services, GatewayConfig())

        async def run():
            await gateway.start()
            results = await asyncio.gather(
                self._produce(gateway.port, list(wedges)),
                self._produce(gateway.port, list(wedges)),
            )
            await gateway.drain()
            await gateway.aclose()
            return results

        results = asyncio.run(run())
        compressor = BCAECompressor(model, half=True)
        code_shape = compressor.code_shape_for(wedges.shape[1:])
        want_payload, want_ids, want_decisions = _flat(inline_payloads)
        for frames in results:
            assert len(frames) == len(wedges)
            assert all(is_record_frame(f) for f in frames)
            rebuilt = records_to_compressed(
                frames, code_shape, wedges.shape[-1], half=True
            )
            assert bytes(rebuilt.payload) == want_payload
            assert rebuilt.codec_ids == want_ids
            assert rebuilt.decisions == want_decisions
            # And the rebuilt archive decodes like the inline one.
            recon = AdaptiveCompressor(compressor).decompress(rebuilt)
            assert recon.shape == wedges.shape
