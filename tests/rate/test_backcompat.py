"""Backward compatibility of the versioned mixed-codec archive format.

Two promises: archives written before the per-wedge codec record still
load and decode exactly as before, and a new-format archive carrying a
codec id this build does not know is rejected with a clear error at load
time — never silently mis-decoded.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import BCAECompressor
from repro.core.compressor import CompressedWedges
from repro.io import load_compressed, save_compressed
from repro.rate import known_codec_ids, validate_codec_ids


class TestLegacyArchives:
    def test_pre_codec_archive_loads_and_decodes(
        self, small_model, mixed_wedges, tmp_path
    ):
        """A raw pre-rate npz (no codec fields at all) still round-trips."""

        comp = BCAECompressor(small_model, half=True)
        c = comp.compress(mixed_wedges)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            payload=np.frombuffer(c.payload, dtype=np.uint8),
            code_shape=np.array(c.code_shape, dtype=np.int64),
            n_wedges=np.array([c.n_wedges], dtype=np.int64),
            original_horizontal=np.array([c.original_horizontal], dtype=np.int64),
            model_name=np.frombuffer(b"bcae_2d", dtype=np.uint8),
        )
        loaded, name = load_compressed(path)
        assert name == "bcae_2d"
        assert loaded.codec_ids is None
        assert loaded.record_sizes is None
        assert loaded.decisions is None
        assert not loaded.mixed
        np.testing.assert_array_equal(comp.decompress(loaded), comp.decompress(c))

    def test_adaptive_tier_decodes_legacy_payloads(
        self, adaptive, small_model, mixed_wedges
    ):
        """The tier passes codec-field-free payloads to the inner BCAE."""

        comp = BCAECompressor(small_model, half=True)
        c = comp.compress(mixed_wedges)
        np.testing.assert_array_equal(adaptive.decompress(c), comp.decompress(c))

    def test_fixed_rate_archive_written_today_has_no_codec_fields(
        self, small_model, mixed_wedges, tmp_path
    ):
        """Plain BCAE payloads keep writing the version-1 layout."""

        c = BCAECompressor(small_model, half=True).compress(mixed_wedges)
        path = save_compressed(c, tmp_path / "v1.npz")
        with np.load(path) as data:
            assert "codec_ids" not in data.files
            assert "format_version" not in data.files


class TestUnknownCodecIds:
    def _poison_archive(self, mixed_compressed, tmp_path, bad_id: int):
        path = save_compressed(mixed_compressed, tmp_path / "mixed.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        ids = arrays["codec_ids"].copy()
        ids[-1] = bad_id
        arrays["codec_ids"] = ids
        np.savez_compressed(path, **arrays)
        return path

    def test_unknown_id_rejected_at_load(self, mixed_compressed, tmp_path):
        path = self._poison_archive(mixed_compressed, tmp_path, bad_id=99)
        with pytest.raises(ValueError, match="unknown codec id"):
            load_compressed(path)

    def test_error_names_the_known_ids(self, mixed_compressed, tmp_path):
        path = self._poison_archive(mixed_compressed, tmp_path, bad_id=99)
        with pytest.raises(ValueError, match=str(tuple(known_codec_ids()))):
            load_compressed(path)

    def test_unknown_id_rejected_at_decompress(self, adaptive, mixed_compressed):
        bad = dataclasses.replace(
            mixed_compressed,
            codec_ids=mixed_compressed.codec_ids[:-1] + (99,),
        )
        with pytest.raises(ValueError, match="unknown codec id"):
            adaptive.decompress(bad)

    def test_validate_codec_ids_accepts_known(self):
        validate_codec_ids(known_codec_ids())


class TestRecordFieldValidation:
    def test_codec_ids_require_record_sizes(self, mixed_compressed):
        with pytest.raises(ValueError, match="record_sizes"):
            dataclasses.replace(mixed_compressed, record_sizes=None)

    def test_field_length_must_match_wedge_count(self, mixed_compressed):
        with pytest.raises(ValueError, match="codec_ids"):
            dataclasses.replace(
                mixed_compressed, codec_ids=mixed_compressed.codec_ids[:-1]
            )

    def test_truncated_mixed_archive_fails_at_load(
        self, mixed_compressed, tmp_path
    ):
        bad = dataclasses.replace(
            mixed_compressed, payload=mixed_compressed.payload[:-8]
        )
        path = save_compressed(bad, tmp_path / "trunc.npz")
        with pytest.raises(ValueError, match="truncated"):
            load_compressed(path)

    def test_codes_view_refuses_mixed_payloads(self, mixed_compressed):
        assert mixed_compressed.mixed
        with pytest.raises(ValueError, match="AdaptiveCompressor"):
            mixed_compressed.codes_view()

    def test_all_bcae_adaptive_payload_still_has_code_view(self, adaptive):
        dense = make_dense(4)
        c = adaptive.compress(dense)
        assert c.codec_ids == (0,) * 4
        assert not c.mixed
        assert c.codes_view().shape[0] == 4


def make_dense(n: int) -> np.ndarray:
    rng = np.random.default_rng(3)
    w = rng.integers(0, 1024, size=(n, 16, 24, 30)).astype(np.uint16)
    w[w < 500] = 0
    return w
