"""Seed determinism of the rate-tier test surface itself.

The CI seed-determinism check re-runs this file; it pins that every
synthetic stream and every decision in the suite is a pure function of
its hard-coded seeds — nothing here may consult global RNG state, wall
clock or iteration order of an unordered container.
"""

from __future__ import annotations

import numpy as np

from repro.core import BCAECompressor, build_model
from repro.rate import AdaptiveCompressor, make_policy

from conftest import MIXED_SEED, WEDGE_SPATIAL, make_mixed_wedges


def _fresh_adaptive() -> AdaptiveCompressor:
    model = build_model("bcae_2d", wedge_spatial=WEDGE_SPATIAL,
                        m=2, n=2, d=2, seed=0)
    model.eval()
    return AdaptiveCompressor(
        BCAECompressor(model, half=True), make_policy("occupancy")
    )


class TestStreamDeterminism:
    def test_mixed_stream_is_a_pure_function_of_its_seed(self):
        np.testing.assert_array_equal(make_mixed_wedges(), make_mixed_wedges())
        np.testing.assert_array_equal(
            make_mixed_wedges(seed=MIXED_SEED + 1),
            make_mixed_wedges(seed=MIXED_SEED + 1),
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            make_mixed_wedges(), make_mixed_wedges(seed=MIXED_SEED + 1)
        )

    def test_stream_does_not_consult_global_rng(self):
        np.random.seed(0)
        a = make_mixed_wedges()
        np.random.seed(12345)
        b = make_mixed_wedges()
        np.testing.assert_array_equal(a, b)


class TestDecisionDeterminism:
    def test_independent_constructions_agree_end_to_end(self):
        """Two from-scratch model+policy+compressor stacks produce the
        same ledger and the same bytes on the same seeded stream."""

        wedges = make_mixed_wedges()
        a = _fresh_adaptive().compress(wedges)
        b = _fresh_adaptive().compress(wedges)
        assert a.codec_ids == b.codec_ids
        assert a.record_sizes == b.record_sizes
        assert a.decisions == b.decisions
        assert bytes(a.payload) == bytes(b.payload)

    def test_decision_rows_round_trip_exactly(self):
        """f64 feature fields survive as_row()/from_row() bit-exactly —
        the property archive and wire ledger equality rests on."""

        from repro.rate import RateDecision

        c = _fresh_adaptive().compress(make_mixed_wedges(6))
        for d in c.decisions:
            assert RateDecision.from_row(d.as_row()) == d
