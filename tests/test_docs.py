"""Documentation health: links resolve, the quickstart parses, docs exist.

The heavyweight check (actually *running* the README quickstart) lives in
CI's docs job via ``tools/check_docs.py --quickstart``; tier-1 keeps the
cheap invariants: every documented file exists, every relative markdown
link resolves, and the quickstart block at least compiles.
"""

import importlib.util
import pathlib

_REPO = pathlib.Path(__file__).resolve().parent.parent


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", _REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsPresent:
    def test_required_documents_exist(self):
        for rel in ("README.md", "docs/ARCHITECTURE.md", "docs/BENCHMARKS.md",
                    "ROADMAP.md", "CHANGES.md"):
            assert (_REPO / rel).is_file(), f"missing {rel}"


class TestLinks:
    def test_all_relative_markdown_links_resolve(self):
        checker = _checker()
        problems = checker.broken_links()
        assert not problems, "\n".join(problems)

    def test_link_check_covers_the_docs(self):
        checker = _checker()
        names = {p.name for p in checker.iter_markdown_files()}
        assert {"README.md", "ARCHITECTURE.md", "BENCHMARKS.md",
                "ROADMAP.md"} <= names


class TestQuickstart:
    def test_readme_quickstart_compiles(self):
        checker = _checker()
        code = checker.readme_quickstart()
        assert "BCAECompressor" in code
        compile(code, "README.md#quickstart", "exec")
