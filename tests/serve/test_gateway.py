"""The sharded gateway: multi-producer ingest, routing, shard loss, drain.

The promises under test are exact even where tolerances are loose:

* every delivered unit is **byte-identical** to the single-service inline
  path (batch invariance makes per-wedge code frames independent of how
  sessions were batched, sharded or spilled);
* producer faults — clean EOF, mid-frame death, malformed frames — are
  contained **per session**, never touching the shards or other sessions;
* a shard that exhausts its backend ladder is evicted: its innocent
  in-flight units re-route to survivors, only the poisoned unit's session
  fails, and the shard's slab ring is released at eviction;
* ``drain()`` quiesces shard-by-shard and is terminal.
"""

import asyncio
import os
import threading

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.serve import (
    MAX_FRAME_BYTES,
    FrameProtocolError,
    GatewayConfig,
    MicroBatcher,
    ServiceConfig,
    ServingGateway,
    ShardLostError,
    StreamingCompressionService,
    StreamRouter,
    WorkerCrashError,
    iter_wedges,
    read_wedge_frame,
    write_wedge_frame,
)


@pytest.fixture(scope="module")
def model():
    return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)


@pytest.fixture(scope="module")
def wedges():
    rng = np.random.default_rng(7)
    w = rng.integers(0, 1024, size=(12, 16, 24, 30)).astype(np.uint16)
    w[w < 500] = 0
    return w


@pytest.fixture(scope="module")
def ref_codes(model, wedges):
    compressor = BCAECompressor(model)
    return [compressor.compress(w[None]).codes()[0] for w in wedges]


POISON_VALUE = 1023


def _poison(wedges):
    return np.full_like(wedges[0], POISON_VALUE)


class CrashyService(StreamingCompressionService):
    """Crashes on any unit containing an all-POISON_VALUE wedge; a
    ``gate`` event (when set on the class instance) delays the crash so a
    test can stack innocent units behind the poisoned one."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = None

    def _work(self, compressor, item):
        if bool((item.wedges == POISON_VALUE).all(axis=(1, 2, 3)).any()):
            if self.gate is not None:
                self.gate.wait(timeout=30.0)
            raise WorkerCrashError("poisoned wedge")
        return super()._work(compressor, item)


async def _produce(port, wedge_list, mode="clean"):
    """One producer session.  Returns the response frames it received.

    mode: "clean" sends every wedge then half-closes; "mid-frame" dies
    inside the last frame's body; "malformed" sends garbage after the
    first wedge.
    """

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        if mode == "clean":
            for w in wedge_list:
                write_wedge_frame(writer, w)
                await writer.drain()
            writer.write_eof()
        elif mode == "mid-frame":
            for w in wedge_list[:-1]:
                write_wedge_frame(writer, w)
            await writer.drain()
            writer.write(b"WDG1\x03")  # header cut mid-dtype
            await writer.drain()
            writer.write_eof()
        elif mode == "malformed":
            write_wedge_frame(writer, wedge_list[0])
            writer.write(b"GARBAGE-NOT-A-FRAME")
            await writer.drain()
            writer.write_eof()
        out = []
        while True:
            frame = await read_wedge_frame(reader)
            if frame is None:
                return out
            out.append(frame)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _services(model, n, cfg=None, cls=StreamingCompressionService):
    cfg = cfg or ServiceConfig(max_batch=4, workers=0)
    return [cls(model, cfg) for _ in range(n)]


# ----------------------------------------------------------------------
# Frame-protocol regressions (the serve-layer correctness sweep)
# ----------------------------------------------------------------------


class TestFrameProtocol:
    def test_socket_ingested_wedges_are_writable(self, wedges):
        """np.frombuffer over received bytes is immutable — regression:
        the returned array must behave like every other source under
        in-place ops."""

        async def run():
            reader = asyncio.StreamReader()

            class _Writer:
                def write(self, data):
                    reader.feed_data(data)

            write_wedge_frame(_Writer(), wedges[0])
            reader.feed_eof()
            return await read_wedge_frame(reader)

        wedge = asyncio.run(run())
        assert wedge.flags.writeable
        wedge += 1  # must not raise
        np.testing.assert_array_equal(wedge, wedges[0].astype(wedge.dtype) + 1)

    def test_hostile_header_rejected_before_buffering(self):
        """A header claiming a huge body (255 dims × u32 each) must raise
        at the cap, not drive readexactly into unbounded buffering."""

        import struct

        header = b"WDG1" + struct.pack("<B", 3) + b"<u2"
        header += struct.pack("<B", 4) + struct.pack("<4I", *((2**31,) * 4))

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(header)
            # No body bytes at all: the cap must fire from the header
            # alone, without waiting for (or allocating) the claimed body.
            with pytest.raises(FrameProtocolError, match="cap"):
                await asyncio.wait_for(read_wedge_frame(reader), timeout=5.0)

        asyncio.run(run())

    def test_cap_is_configurable_and_default_generous(self, wedges):
        import io

        buffer = io.BytesIO()

        class _Writer:
            def write(self, data):
                buffer.write(data)

        write_wedge_frame(_Writer(), wedges[0])
        frame = buffer.getvalue()

        async def run(cap):
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await read_wedge_frame(reader, max_frame_bytes=cap)

        with pytest.raises(FrameProtocolError, match="cap"):
            asyncio.run(run(64))
        np.testing.assert_array_equal(asyncio.run(run(None)), wedges[0])
        np.testing.assert_array_equal(asyncio.run(run(MAX_FRAME_BYTES)), wedges[0])
        assert wedges[0].nbytes < MAX_FRAME_BYTES

    def test_write_frame_rejects_dims_over_u32(self):
        """Dims ≥ 2³² must raise FrameProtocolError, not struct.error.
        (Zero-width trailing axis keeps the array allocation-free.)"""

        huge = np.zeros((2**32, 0), dtype=np.uint16)
        with pytest.raises(FrameProtocolError, match="u32"):
            write_wedge_frame(None, huge)


# ----------------------------------------------------------------------
# Multi-producer round trips
# ----------------------------------------------------------------------


class TestGatewayRoundTrip:
    def _run(self, model, wedges, n_shards, producer_specs, cfg=None,
             gw_cfg=None, services=None):
        services = services or _services(model, n_shards, cfg)
        gateway = ServingGateway(services, gw_cfg or GatewayConfig())

        async def run():
            await gateway.start()
            results = await asyncio.gather(
                *[_produce(gateway.port, ws, mode) for ws, mode in producer_specs]
            )
            await gateway.drain()
            await gateway.aclose()
            return results

        return asyncio.run(run()), gateway

    def test_concurrent_producers_clean_eof_byte_parity(
            self, model, wedges, ref_codes):
        """4 producers × 2 shards: every producer gets one response frame
        per wedge, in order, byte-identical to the inline path."""

        specs = [(list(wedges), "clean")] * 4
        results, gateway = self._run(model, wedges, 2, specs)
        for out in results:
            assert len(out) == len(wedges)
            for got, want in zip(out, ref_codes):
                assert got.tobytes() == want.tobytes()
        stats = gateway.stats()
        assert stats.n_sessions == 4
        assert stats.n_wedges == 4 * len(wedges)
        assert stats.lost_shards == 0
        assert sum(s.n_wedges for s in stats.per_shard) == stats.n_wedges

    def test_mid_frame_death_contained_per_session(
            self, model, wedges, ref_codes):
        """A producer dying mid-frame fails its own session only; the
        concurrent clean session gets full byte parity."""

        specs = [(list(wedges), "clean"), (list(wedges[:4]), "mid-frame")]
        results, gateway = self._run(model, wedges, 2, specs)
        clean, dead = results
        assert len(clean) == len(wedges)
        for got, want in zip(clean, ref_codes):
            assert got.tobytes() == want.tobytes()
        # The dead session still gets responses for frames completed
        # before the cut (they were already routed), never more.
        assert len(dead) <= 3
        health = gateway.health()
        assert health.lost == []  # producer faults never evict shards

    def test_malformed_frame_contained_per_session(
            self, model, wedges, ref_codes):
        specs = [(list(wedges), "clean"), (list(wedges), "malformed"),
                 (list(wedges), "clean")]
        results, gateway = self._run(model, wedges, 2, specs)
        for out in (results[0], results[2]):
            assert len(out) == len(wedges)
            for got, want in zip(out, ref_codes):
                assert got.tobytes() == want.tobytes()
        assert len(results[1]) <= 1
        assert gateway.stats().lost_shards == 0

    def test_sharded_bytes_match_single_service_inline(
            self, model, wedges, ref_codes):
        """Byte parity is invariant to shard count: 1 shard and 3 shards
        deliver identical frames for identical sessions."""

        specs = [(list(wedges), "clean")] * 2
        one, _ = self._run(model, wedges, 1, specs)
        three, _ = self._run(model, wedges, 3, specs)
        for a, b in zip(one, three):
            assert b"".join(f.tobytes() for f in a) == \
                b"".join(f.tobytes() for f in b)
            assert b"".join(f.tobytes() for f in a) == \
                b"".join(c.tobytes() for c in ref_codes)


# ----------------------------------------------------------------------
# Router policy: placement, backpressure, health-awareness
# ----------------------------------------------------------------------


class GatedService(StreamingCompressionService):
    """Blocks every unit on an event, so tests can hold units in flight."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()

    def _work(self, compressor, item):
        self.gate.wait(timeout=30.0)
        return super()._work(compressor, item)


class TestRouterPolicy:
    def test_sessions_stick_to_home_shard(self, model, wedges):
        batches = list(MicroBatcher(max_batch=2).batches(iter_wedges(wedges[:8])))

        async def run():
            router = StreamRouter(_services(model, 2))
            router.start()
            futs = [await router.submit(b, session=11) for b in batches]
            await asyncio.gather(*futs)
            per_shard = [s.n_batches for s in router.stats().per_shard]
            await router.drain()
            return per_shard

        per_shard = asyncio.run(run())
        # One session, healthy uncontended home: no spill.
        assert sorted(per_shard) == [0, len(batches)]

    def test_full_home_spills_to_least_loaded(self, model, wedges):
        batches = list(MicroBatcher(max_batch=2).batches(iter_wedges(wedges[:8])))

        async def run():
            services = [GatedService(model, ServiceConfig(max_batch=2, workers=0))
                        for _ in range(2)]
            router = StreamRouter(services, inflight_per_shard=1)
            router.start()
            f0 = await router.submit(batches[0], session=5)  # home assigned
            f1 = await router.submit(batches[1], session=5)  # home full: spill
            spilled = router.rerouted
            for service in services:
                service.gate.set()
            await asyncio.gather(f0, f1)
            await router.drain()
            return spilled

        assert asyncio.run(run()) == 1

    def test_backpressure_awaits_capacity(self, model, wedges):
        batches = list(MicroBatcher(max_batch=2).batches(iter_wedges(wedges[:6])))

        async def run():
            services = [GatedService(model, ServiceConfig(max_batch=2, workers=0))]
            router = StreamRouter(services, inflight_per_shard=2)
            router.start()
            f0 = await router.submit(batches[0])
            f1 = await router.submit(batches[1])
            # Third submit must await capacity, not place over the bound.
            third = asyncio.ensure_future(router.submit(batches[2]))
            await asyncio.sleep(0.1)
            assert not third.done()
            services[0].gate.set()
            f2 = await asyncio.wait_for(third, timeout=30.0)
            await asyncio.gather(f0, f1, f2)
            await router.drain()

        asyncio.run(run())

    def test_routes_around_draining_shard(self, model, wedges):
        batches = list(MicroBatcher(max_batch=2).batches(iter_wedges(wedges[:8])))

        async def run():
            services = _services(model, 2)
            router = StreamRouter(services)
            router.start()
            # wait=False: the latch flips shard 1's health to draining;
            # its idle pump stream only observes the latch at its next
            # item, which health-aware placement ensures never comes.
            services[1].drain(wait=False)
            futs = [await router.submit(b, session=i)
                    for i, b in enumerate(batches)]
            await asyncio.gather(*futs)
            per_shard = [s.n_batches for s in router.stats().per_shard]
            await router.drain()
            return per_shard

        per_shard = asyncio.run(run())
        assert per_shard[1] == 0
        assert per_shard[0] == len(batches)


# ----------------------------------------------------------------------
# Shard loss
# ----------------------------------------------------------------------


class TestShardLoss:
    def test_innocent_inflight_units_reroute(self, model, wedges, ref_codes):
        """Units queued behind a poisoned unit on the dying shard re-route
        to the survivor and still deliver byte-correct results."""

        poison = _poison(wedges)
        batches = list(MicroBatcher(max_batch=2).batches(iter_wedges(wedges[:6])))

        async def run():
            cfg = ServiceConfig(max_batch=2, workers=0, max_retries=0)
            services = [CrashyService(model, cfg) for _ in range(2)]
            services[0].gate = threading.Event()
            router = StreamRouter(services, inflight_per_shard=8)
            router.start()
            # Force everything onto shard 0 by making shard 1 look busy.
            router._homes[1] = router._shards[0]
            poison_batch = next(iter(
                MicroBatcher(max_batch=1).batches(iter_wedges([poison]))))
            bad = await router.submit(poison_batch, session=1)
            innocents = [await router.submit(b, session=1) for b in batches]
            await asyncio.sleep(0.1)  # let innocents queue behind the poison
            services[0].gate.set()     # now crash shard 0
            with pytest.raises(WorkerCrashError):
                await bad
            results = await asyncio.gather(*innocents)
            state = (router.lost_shards, router.rerouted,
                     [s.level for s in router.stats().per_shard])
            await router.drain()
            return results, state

        results, (lost, rerouted, levels) = asyncio.run(run())
        assert lost == 1
        assert rerouted >= len(batches)
        assert levels[0] == "lost"
        flat = [w for _r, payload in results for w in payload.codes()]
        for got, want in zip(flat, ref_codes):
            assert got.tobytes() == want.tobytes()

    def test_no_survivor_fails_per_session_not_globally(self, model, wedges):
        """Last shard lost: queued units fail with ShardLostError and new
        submits raise it too — no hang, no global crash."""

        poison = _poison(wedges)

        async def run():
            cfg = ServiceConfig(max_batch=2, workers=0, max_retries=0)
            services = [CrashyService(model, cfg)]
            services[0].gate = threading.Event()
            router = StreamRouter(services)
            router.start()
            poison_batch = next(iter(
                MicroBatcher(max_batch=1).batches(iter_wedges([poison]))))
            clean_batch = next(iter(
                MicroBatcher(max_batch=2).batches(iter_wedges(wedges[:2]))))
            bad = await router.submit(poison_batch)
            orphan = await router.submit(clean_batch)
            await asyncio.sleep(0.05)
            services[0].gate.set()
            with pytest.raises(WorkerCrashError):
                await bad
            with pytest.raises(ShardLostError):
                await orphan
            with pytest.raises(ShardLostError):
                await router.submit(clean_batch)
            await router.drain()

        asyncio.run(run())

    def test_socket_sessions_survive_shard_loss(self, model, wedges, ref_codes):
        """End-to-end: the poisoned producer's session fails alone; clean
        concurrent sessions get full byte parity from the survivors."""

        poison = _poison(wedges)
        cfg = ServiceConfig(max_batch=4, workers=0, max_retries=0)
        services = [CrashyService(model, cfg) for _ in range(2)]
        gateway = ServingGateway(services, GatewayConfig())

        async def run():
            await gateway.start()
            results = await asyncio.gather(
                _produce(gateway.port, [poison]),
                _produce(gateway.port, list(wedges)),
                _produce(gateway.port, list(wedges)),
            )
            health = gateway.health()
            stats = gateway.stats()
            await gateway.drain()
            await gateway.aclose()
            return results, health, stats

        (bad, *clean), health, stats = asyncio.run(run())
        assert bad == []
        for out in clean:
            assert len(out) == len(wedges)
            for got, want in zip(out, ref_codes):
                assert got.tobytes() == want.tobytes()
        assert stats.lost_shards == 1
        assert len(health.lost) == 1
        assert health.state == "degraded"
        lost_health = health.shards[health.lost[0]]
        assert lost_health.state == "lost"
        assert stats.faults.crashes >= 1

    def test_shard_loss_releases_ring_no_leaked_slabs(
            self, model, wedges, tmp_path):
        """A process-backend shard that exhausts its ladder releases its
        shared ring at eviction — zero leaked slabs while the gateway
        keeps serving."""

        from multiprocessing import shared_memory

        poison = _poison(wedges)
        # degrade_after=1: each crash steps the ladder down immediately,
        # so three crashed units walk process → thread → inline → lost.
        cfg = ServiceConfig(max_batch=2, workers=1, backend="process",
                            max_retries=0, degrade_after=1)
        services = [CrashyService(model, cfg), CrashyService(
            model, ServiceConfig(max_batch=2, workers=0))]
        # One batcher stream so every unit has a distinct seq: primer is
        # seq 0, the three poisons are seqs 1-3, the closer is seq 4.
        feed = [wedges[0], poison, poison, poison, wedges[1]]
        batches = list(MicroBatcher(max_batch=1).batches(iter_wedges(feed)))
        primer, poisons, closer = batches[0], batches[1:4], batches[4]
        # The process rung runs the *real* compressor inside the worker
        # (the subclass ``_work`` override only executes on the
        # thread/inline rungs), so the first crash must be a genuine
        # worker SIGKILL — armed via the kill-token hook for the first
        # poison's seq, before the pool forks.
        token = tmp_path / "kill-token"
        token.write_text("")
        os.environ["REPRO_SERVE_KILL_FILE"] = str(token)
        os.environ["REPRO_SERVE_KILL_SEQ"] = "1"

        async def run():
            router = StreamRouter(services)
            router.start()
            router._homes[1] = router._shards[0]
            # Prime the ring with one clean unit so a slab segment exists.
            await (await router.submit(primer, session=1))
            ring_name = services[0].last_shm.get("name") or (
                router._shards[0]._transport.ring.spec().name
                if router._shards[0]._transport.ring is not None else None)
            # SIGKILL at the process rung, then the ``_work`` override
            # crashes the thread and inline rungs.
            for batch in poisons:
                fut = await router.submit(batch, session=1)
                with pytest.raises(WorkerCrashError):
                    await fut
            assert router.lost_shards == 1
            # Survivor still serves.
            ok = await router.submit(closer, session=1)
            await ok
            leak_info = services[0].last_shm
            await router.drain()
            return ring_name, leak_info

        try:
            ring_name, leak_info = asyncio.run(run())
        finally:
            os.environ.pop("REPRO_SERVE_KILL_FILE", None)
            os.environ.pop("REPRO_SERVE_KILL_SEQ", None)
        # The ring is destroyed when the stream degrades below the
        # process rung (`leased_at_close` is only published when a ring
        # survives to transport close); either way nothing is leased and
        # the segment itself must be gone from the system.
        assert leak_info.get("leased_at_close", 0) == 0
        assert ring_name is not None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ring_name)
        if leak_info.get("name") and leak_info["name"] != ring_name:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=leak_info["name"])


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_drain_quiesces_shard_by_shard_and_is_terminal(
            self, model, wedges, ref_codes):
        services = _services(model, 2)
        gateway = ServingGateway(services, GatewayConfig())

        async def run():
            await gateway.start()
            out = await _produce(gateway.port, list(wedges))
            drained = await gateway.drain()
            health = gateway.health()
            # Terminal: new units are refused on every shard.
            with pytest.raises((RuntimeError, ShardLostError)):
                await gateway.router.submit(None)
            await gateway.aclose()
            return out, drained, health

        out, drained, health = asyncio.run(run())
        assert drained is True
        assert health.state == "drained"
        assert not health.ok
        assert all(h.state == "drained" for h in health.shards)
        for got, want in zip(out, ref_codes):
            assert got.tobytes() == want.tobytes()
        # Per-service drains were issued shard-by-shard underneath.
        for service in services:
            assert service.health().state == "drained"

    def test_stats_aggregate_service_stats_across_shards(self, model, wedges):
        specs_batches = list(
            MicroBatcher(max_batch=3).batches(iter_wedges(wedges)))

        async def run():
            router = StreamRouter(_services(model, 3))
            router.start()
            futs = [await router.submit(b, session=i % 3)
                    for i, b in enumerate(specs_batches)]
            await asyncio.gather(*futs)
            stats = router.stats()
            await router.drain()
            return stats

        stats = asyncio.run(run())
        assert len(stats.per_shard) == 3
        assert stats.n_units == len(specs_batches)
        assert stats.n_wedges == len(wedges)
        assert stats.faults.total == 0
        assert "wedges=" in stats.row()


# ----------------------------------------------------------------------
# Adaptive slab sizing & fallback accounting
# ----------------------------------------------------------------------


class TestAdaptiveSlab:
    def test_adaptive_ring_fits_real_units_no_fallbacks(self, model, wedges):
        """Default shm_slab_mb=None sizes the ring from the first unit's
        arithmetic: real units fit, zero silent pickle degradations."""

        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, workers=1, backend="process"))
        payloads, stats = service.run(wedges)
        assert service.last_shm["transport"] == "shm"
        assert service.last_shm["input_fallbacks"] == 0
        assert service.last_shm["result_fallbacks"] == 0
        assert stats.faults.shm_fallbacks == 0
        # The ring's slab honours the service's own sizing arithmetic
        # (page-rounded).
        batch = next(iter(MicroBatcher(max_batch=4).batches(iter_wedges(wedges))))
        want = service._adaptive_slab_nbytes(batch)
        want = max(4096, -(-int(want) // 4096) * 4096)
        assert service.last_shm["slab_nbytes"] == want

    def test_undersized_slab_counts_fallbacks_on_stats(self, model, wedges):
        """An explicitly tiny slab degrades units to pickle — correct
        bytes, but now *counted* on ServiceStats and health totals."""

        serial = BCAECompressor(model).compress(wedges).codes()
        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, workers=1, backend="process",
                                 shm_slab_mb=0.001))  # ~1 KiB: nothing fits
        payloads, stats = service.run(wedges)
        got = np.concatenate([p.codes() for p in payloads])
        assert got.tobytes() == serial.tobytes()
        assert service.last_shm["input_fallbacks"] > 0
        assert stats.faults.shm_fallbacks > 0
        assert service.health().faults.shm_fallbacks > 0
        # Fallbacks are a throughput signal, not a fault.
        assert stats.faults.total == 0
        assert "shm_fallbacks=" in stats.faults.row()
