"""The model-pool services: ordering, parity, stats, worker backends."""

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.serve import (
    DecompressionService,
    ServiceConfig,
    StreamingCompressionService,
    iter_wedges,
    replay_stream,
)


@pytest.fixture(scope="module")
def model():
    return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)


@pytest.fixture(scope="module")
def wedges():
    rng = np.random.default_rng(5)
    w = rng.integers(0, 1024, size=(13, 16, 24, 30)).astype(np.uint16)
    w[w < 500] = 0
    return w


@pytest.fixture(scope="module")
def serial_payloads(model, wedges):
    compressor = BCAECompressor(model)
    return [compressor.compress(w).payload for w in wedges]


class TestOrderingAndParity:
    @pytest.mark.parametrize("config", [
        ServiceConfig(max_batch=4, workers=0),
        ServiceConfig(max_batch=4, workers=2),
        ServiceConfig(max_batch=8, workers=3, inflight=2),
        ServiceConfig(max_batch=1, workers=0),
    ], ids=["inline", "pool2", "pool3-tight", "batch1"])
    def test_no_wedge_dropped_order_preserved_bytes_identical(
        self, model, wedges, serial_payloads, config
    ):
        service = StreamingCompressionService(model, config)
        payloads, stats = service.run(wedges)
        assert stats.n_wedges == len(wedges)
        assert sum(p.n_wedges for p in payloads) == len(wedges)
        # Order + parity in one shot: concatenated service bytes must equal
        # the serial single-wedge bytes in stream order.
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)

    def test_accepts_stream_items_and_lists(self, model, wedges, serial_payloads):
        service = StreamingCompressionService(model, ServiceConfig(max_batch=4))
        payloads, _ = service.run(iter_wedges(list(wedges)))
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)
        payloads, _ = service.run(list(wedges))
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)

    def test_empty_stream(self, model):
        payloads, stats = StreamingCompressionService(model).run([])
        assert payloads == [] and stats.n_wedges == 0 and stats.n_batches == 0


class TestStats:
    def test_stats_sane(self, model, wedges):
        service = StreamingCompressionService(model, ServiceConfig(max_batch=4))
        _p, stats = service.run(wedges)
        assert stats.n_batches == 4  # 4+4+4+1
        assert stats.wedges_per_second > 0
        assert stats.mean_batch_s > 0
        assert stats.p99_batch_s >= min(r.compress_s for r in stats.records)
        assert stats.mean_batch_size == pytest.approx(13 / 4)
        assert "throughput" in stats.row()

    def test_throughput_result_bridge(self, model, wedges):
        service = StreamingCompressionService(model, ServiceConfig(max_batch=4))
        _p, stats = service.run(wedges)
        tr = stats.to_throughput_result()
        assert tr.wedges_per_second == pytest.approx(stats.wedges_per_second)
        assert tr.seconds_per_batch <= tr.seconds_per_batch_mean
        assert tr.repeats == stats.n_batches

    def test_worker_attribution(self, model, wedges):
        service = StreamingCompressionService(model, ServiceConfig(max_batch=2, workers=2))
        _p, stats = service.run(wedges)
        assert all(r.worker.startswith("w") for r in stats.records)


class TestTimedReplay:
    def test_daq_stream_respects_budget(self, model, wedges, serial_payloads):
        from repro.daq import DAQConfig, StreamingCompressionSim

        sim = StreamingCompressionSim(
            DAQConfig(frame_rate_hz=1000.0, wedges_per_frame=2), seed=3
        )
        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=16, max_delay_s=1.5e-3)
        )
        payloads, stats = service.run(replay_stream(sim.wedge_stream(wedges)))
        assert stats.n_wedges == len(wedges)
        assert stats.n_batches >= 3  # budget splits the stream
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)


class TestProcessBackend:
    """ServiceConfig(backend="process"): GIL-sidestepping worker pool."""

    def test_compression_parity(self, model, wedges, serial_payloads):
        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, workers=2, backend="process")
        )
        payloads, stats = service.run(wedges)
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)
        assert stats.n_wedges == len(wedges)
        assert all(r.worker.startswith("p") for r in stats.records)

    def test_decompression_parity(self, model, wedges):
        comp = BCAECompressor(model)
        batch = comp.compress(wedges)
        ref = comp.decompress(batch)
        service = DecompressionService(
            model, ServiceConfig(max_batch=4, workers=2, backend="process")
        )
        recons, stats = service.run(batch)
        np.testing.assert_array_equal(np.concatenate(recons), ref)
        assert stats.n_wedges == len(wedges)

    def test_inline_ignores_backend(self, model, wedges, serial_payloads):
        """workers=0 runs inline regardless of the configured backend."""

        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, workers=0, backend="process")
        )
        payloads, _ = service.run(wedges)
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)


class TestDecompressionService:
    @pytest.fixture(scope="class")
    def payload_batches(self, model, wedges):
        comp = BCAECompressor(model)
        return [comp.compress(wedges[:5]), comp.compress(wedges[5:])]

    @pytest.fixture(scope="class")
    def serial_recons(self, model, wedges):
        comp = BCAECompressor(model)
        return np.concatenate([comp.decompress(comp.compress(w)) for w in wedges])

    @pytest.mark.parametrize("config", [
        ServiceConfig(max_batch=4, workers=0),
        ServiceConfig(max_batch=4, workers=2),
        ServiceConfig(max_batch=1, workers=0),
        ServiceConfig(max_batch=64, workers=0),
    ], ids=["inline", "pool2", "batch1", "batch-all"])
    def test_order_and_parity(self, model, payload_batches, serial_recons, config):
        service = DecompressionService(model, config)
        recons, stats = service.run(payload_batches)
        assert stats.n_wedges == 13
        got = np.concatenate(recons)
        np.testing.assert_array_equal(got, serial_recons)

    def test_single_payload_accepted(self, model, payload_batches):
        service = DecompressionService(model, ServiceConfig(max_batch=4))
        recons, stats = service.run(payload_batches[0])
        assert stats.n_wedges == 5
        assert sum(r.shape[0] for r in recons) == 5

    def test_rechunking_respects_max_batch(self, model, payload_batches):
        service = DecompressionService(model, ServiceConfig(max_batch=2))
        _recons, stats = service.run(payload_batches)
        assert all(r.n_wedges <= 2 for r in stats.records)
        assert stats.n_batches == 7  # 3+4 chunks from the 5+8 wedge batches

    def test_recons_are_owned(self, model, payload_batches):
        """Emitted arrays must not alias worker workspaces."""

        service = DecompressionService(model, ServiceConfig(max_batch=4))
        recons, _ = service.run(payload_batches)
        for a in recons:
            for b in recons:
                assert a is b or not np.shares_memory(a, b)

    def test_empty_source(self, model):
        recons, stats = DecompressionService(model).run([])
        assert recons == [] and stats.n_wedges == 0 and stats.n_batches == 0

    def test_half_mismatch_surfaces(self, model, payload_batches):
        import dataclasses

        bad = dataclasses.replace(payload_batches[0], half=False)
        service = DecompressionService(model, ServiceConfig(max_batch=4))
        with pytest.raises(ValueError, match="precision"):
            service.run(bad)


class TestConfigValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=-1)

    def test_zero_inflight_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(inflight=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(backend="fiber")
