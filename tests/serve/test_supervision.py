"""The supervision layer: crash recovery, deadlines, retry, degrade, drain.

The full fault matrix on every backend — {kill, hang, poison,
corrupt-slab} × {retry-succeeds, retries-exhausted, degraded-fallback} —
each case asserting the service afterwards serves byte-identical results
to the inline backend and that the slab ring leaked nothing.  Faults are
injected deterministically through :class:`ProbeItem` (every backend) and
the ``REPRO_SERVE_KILL_FILE`` hook (a real SIGKILL inside a real
compress worker — the ISSUE's acceptance scenario).
"""

import json
import os
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import build_model
from repro.serve import (
    HandoffProbeService,
    ServiceConfig,
    StreamingCompressionService,
    UnitTimeoutError,
    WorkerCrashError,
    iter_wedges,
    start_health_server,
)


def _arrays(n=6):
    return [np.full((3, 4), i, dtype=np.uint16) for i in range(n)]


def _checksums(arrays):
    return [float(a.sum()) for a in arrays]


def _config(backend: str, **kw) -> ServiceConfig:
    base = dict(max_batch=2, backoff_base_s=0.0, inflight=3)
    if backend == "inline":
        base.update(workers=0)
    elif backend == "thread":
        base.update(workers=2)
    elif backend == "process-shm":
        base.update(workers=1, backend="process", shm_slab_mb=1.0)
    else:  # process-pickle
        base.update(workers=1, backend="process", transport="pickle")
    base.update(kw)
    return ServiceConfig(**base)


def _assert_clean(probe: HandoffProbeService, arrays) -> None:
    """The post-fault invariant every matrix case ends on: the same
    service instance serves a full follow-up run identical to the inline
    backend, and no slab stayed leased."""

    results, stats = probe.run(arrays, keep_results=True)
    assert results == _checksums(arrays)
    assert [r.seq for r in stats.records] == list(range(len(arrays)))
    if probe.last_shm.get("transport") == "shm":
        assert probe.last_shm["leased_at_close"] == 0


BACKENDS = ["inline", "thread", "process-shm", "process-pickle"]
# On inline/thread the injected kill raises WorkerCrashError (threads
# cannot be SIGKILLed); on process it is a real SIGKILL -> broken pool.
# Either way the supervisor charges the owning unit the same way.
CRASH_FAULTS = ["kill", "corrupt-slab"]


class TestRetrySucceeds:
    """Fault on the first attempt only -> the unit succeeds on retry."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fault", ["poison", "kill", "corrupt-slab"])
    def test_one_shot_fault_retries_to_success(self, backend, fault):
        probe = HandoffProbeService(_config(backend, max_retries=2))
        arrays = _arrays()
        items = probe.items(arrays, faults={2: fault}, fail_attempts=1)
        results, stats = probe.run(items, keep_results=True)
        assert results == _checksums(arrays)
        retried = [r for r in stats.records if r.seq == 2][0]
        assert retried.attempts == 2
        assert all(r.attempts == 1 for r in stats.records if r.seq != 2)
        assert stats.faults.retries == 1
        assert stats.faults.failures == 0
        _assert_clean(probe, arrays)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hang_times_out_then_retry_succeeds(self, backend):
        # Thread workers cannot be interrupted, so the hang must be short
        # enough to finish before interpreter exit joins the abandoned
        # pool; process workers are SIGKILLed, so any length works.
        hang_s = 10.0 if backend.startswith("process") else 0.5
        probe = HandoffProbeService(
            _config(backend, unit_timeout_s=0.15, max_retries=2)
        )
        arrays = _arrays()
        items = probe.items(arrays, faults={2: "hang"}, hang_s=hang_s,
                            fail_attempts=1)
        results, stats = probe.run(items, keep_results=True)
        assert results == _checksums(arrays)
        if backend == "inline":
            # Inline executes at submit time on the caller's thread: the
            # deadline is unenforceable, the unit just takes longer.
            assert stats.faults.timeouts == 0
        else:
            assert stats.faults.timeouts >= 1
            assert [r for r in stats.records if r.seq == 2][0].attempts == 2
        _assert_clean(probe, arrays)


class TestRetriesExhausted:
    """A persistent fault surfaces on the owning unit once the budget is
    spent — and only there; the service stays serviceable."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fault,exc", [
        ("poison", RuntimeError),
        ("kill", WorkerCrashError),
        ("corrupt-slab", WorkerCrashError),
    ])
    def test_persistent_fault_surfaces_on_owner(self, backend, fault, exc):
        probe = HandoffProbeService(_config(backend, max_retries=1))
        arrays = _arrays()
        items = probe.items(arrays, faults={3: fault})
        with pytest.raises(exc):
            probe.run(items)
        totals = probe.health().faults
        assert totals.failures == 1
        assert totals.retries == 1
        _assert_clean(probe, arrays)

    @pytest.mark.parametrize("backend", ["thread", "process-shm",
                                         "process-pickle"])
    def test_persistent_hang_raises_unit_timeout(self, backend):
        hang_s = 10.0 if backend.startswith("process") else 0.3
        probe = HandoffProbeService(
            _config(backend, unit_timeout_s=0.15, max_retries=1,
                    degrade_after=10)
        )
        arrays = _arrays()
        items = probe.items(arrays, faults={1: "hang"}, hang_s=hang_s)
        with pytest.raises(UnitTimeoutError, match="deadline"):
            probe.run(items)
        assert probe.health().faults.timeouts >= 2  # initial + retry
        _assert_clean(probe, arrays)

    def test_zero_retries_is_fail_fast(self):
        probe = HandoffProbeService(_config("process-shm"))
        arrays = _arrays()
        with pytest.raises(WorkerCrashError):
            probe.run(probe.items(arrays, faults={0: "kill"}))
        assert probe.health().faults.retries == 0
        _assert_clean(probe, arrays)

    @pytest.mark.parametrize("backend", ["process-shm", "process-pickle"])
    def test_crash_charged_only_to_owner(self, backend):
        # A broken pool fails every in-flight future; units other than
        # the killer must be re-driven uncharged and emit attempts=1.
        probe = HandoffProbeService(_config(backend, max_retries=1))
        arrays = _arrays(6)
        items = probe.items(arrays, faults={2: "kill"}, fail_attempts=1)
        results, stats = probe.run(items, keep_results=True)
        assert results == _checksums(arrays)
        assert all(r.attempts == 1 for r in stats.records if r.seq != 2)


class TestDegradedFallback:
    """The circuit breaker steps the backend down instead of dying."""

    @pytest.mark.parametrize("backend", ["process-shm", "process-pickle"])
    @pytest.mark.parametrize("fault", CRASH_FAULTS)
    def test_process_degrades_to_thread_and_succeeds(self, backend, fault):
        probe = HandoffProbeService(
            _config(backend, max_retries=4, degrade_after=2)
        )
        arrays = _arrays()
        # Crashes twice (trips the breaker at degrade_after=2), then the
        # third attempt runs on the thread level and succeeds.
        items = probe.items(arrays, faults={1: fault}, fail_attempts=2)
        results, stats = probe.run(items, keep_results=True)
        assert results == _checksums(arrays)
        assert stats.faults.degraded == 1
        assert stats.level == "thread"
        health = probe.health()
        assert health.state == "degraded"
        assert health.level == "thread"
        # The step-down is sticky: the follow-up stream reports it too.
        results, stats = probe.run(arrays, keep_results=True)
        assert results == _checksums(arrays)
        assert stats.level == "thread"

    def test_thread_degrades_to_inline(self):
        probe = HandoffProbeService(
            _config("thread", max_retries=4, degrade_after=2)
        )
        arrays = _arrays()
        items = probe.items(arrays, faults={1: "kill"}, fail_attempts=2)
        results, stats = probe.run(items, keep_results=True)
        assert results == _checksums(arrays)
        assert stats.level == "inline"
        assert probe.health().state == "degraded"

    def test_inline_has_no_lower_level(self):
        probe = HandoffProbeService(
            _config("inline", max_retries=4, degrade_after=2)
        )
        arrays = _arrays()
        items = probe.items(arrays, faults={1: "kill"}, fail_attempts=3)
        results, stats = probe.run(items, keep_results=True)
        assert results == _checksums(arrays)
        assert stats.faults.degraded == 0
        assert stats.level == "inline"


class TestRealServiceCrashRecovery:
    """The ISSUE's acceptance scenario: a real compress worker SIGKILLed
    mid-batch, on both process transports."""

    @pytest.fixture(scope="class")
    def model(self):
        return build_model("bcae_2d", wedge_spatial=(16, 24, 32), seed=0)

    @pytest.fixture(scope="class")
    def wedges(self):
        rng = np.random.default_rng(7)
        w = rng.integers(0, 1024, size=(10, 16, 24, 32)).astype(np.uint16)
        w[w < 700] = 0
        return w

    @pytest.fixture(scope="class")
    def inline_payloads(self, model, wedges):
        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, workers=0)
        )
        payloads, _ = service.run(wedges)
        return payloads

    def _kill_token(self, tmp_path, seq: int):
        path = tmp_path / "kill-token"
        path.write_text("")
        os.environ["REPRO_SERVE_KILL_FILE"] = str(path)
        os.environ["REPRO_SERVE_KILL_SEQ"] = str(seq)

    def _clear_token(self):
        os.environ.pop("REPRO_SERVE_KILL_FILE", None)
        os.environ.pop("REPRO_SERVE_KILL_SEQ", None)

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_sigkill_mid_batch_recovers_byte_identical(
        self, model, wedges, inline_payloads, transport, tmp_path
    ):
        service = StreamingCompressionService(model, ServiceConfig(
            max_batch=4, workers=1, backend="process", transport=transport,
            max_retries=1, backoff_base_s=0.0,
        ))
        self._kill_token(tmp_path, seq=1)
        try:
            payloads, stats = service.run(wedges)
        finally:
            self._clear_token()
        assert [bytes(p.payload) for p in payloads] == [
            bytes(p.payload) for p in inline_payloads
        ]
        killed = [r for r in stats.records if r.seq == 1][0]
        assert killed.attempts == 2
        assert stats.faults.crashes >= 1
        if transport == "shm":
            assert service.last_shm["leased_at_close"] == 0
            assert service.last_shm["ring_rebuilds"] >= 1
        # Same instance, full follow-up run, byte-identical, no leaks.
        payloads, stats = service.run(wedges)
        assert [bytes(p.payload) for p in payloads] == [
            bytes(p.payload) for p in inline_payloads
        ]
        assert stats.faults.crashes == 0
        if transport == "shm":
            assert service.last_shm["leased_at_close"] == 0

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_sigkill_without_retry_budget_fails_owner_only(
        self, model, wedges, inline_payloads, transport, tmp_path
    ):
        service = StreamingCompressionService(model, ServiceConfig(
            max_batch=4, workers=1, backend="process", transport=transport,
        ))
        self._kill_token(tmp_path, seq=1)
        try:
            with pytest.raises(WorkerCrashError, match="seq=1"):
                service.run(wedges)
        finally:
            self._clear_token()
        if transport == "shm":
            assert service.last_shm["leased_at_close"] == 0
        payloads, _ = service.run(wedges)
        assert [bytes(p.payload) for p in payloads] == [
            bytes(p.payload) for p in inline_payloads
        ]


class TestDrain:
    def test_drain_stops_intake_and_flushes(self):
        probe = HandoffProbeService(_config("inline"))
        arrays = _arrays(8)

        def source():
            for i, item in enumerate(probe.items(arrays)):
                if i == 3:
                    probe.drain(wait=False)
                yield item

        emitted = list(probe._serve(source()))
        assert 0 < len(emitted) < len(arrays)
        assert probe.health().state == "drained"
        assert not probe.health().ok
        with pytest.raises(RuntimeError, match="drain"):
            probe.run(probe.items(arrays))

    def test_drain_flushes_partial_batch_as_drain(self):
        model = build_model("bcae_2d", wedge_spatial=(16, 24, 32), seed=0)
        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, workers=0)
        )
        rng = np.random.default_rng(0)
        wedges = rng.integers(0, 1024, size=(10, 16, 24, 32)).astype(np.uint16)

        def source():
            for i, item in enumerate(iter_wedges(wedges)):
                if i == 5:
                    service.drain(wait=False)
                yield item

        records = [record for record, _ in service.compress_stream(source())]
        assert records[-1].closed_by == "drain"
        assert sum(r.n_wedges for r in records) < len(wedges)
        assert service.health().state == "drained"

    def test_drain_wait_returns_true_when_idle(self):
        probe = HandoffProbeService(_config("inline"))
        probe.run(probe.items(_arrays(2)))
        assert probe.drain(wait=True, timeout=1.0)
        assert probe.health().state == "drained"


class TestHealth:
    def test_healthy_service_reports_state(self):
        probe = HandoffProbeService(_config("process-shm"))
        health = probe.health()
        assert health.state == "healthy"
        assert health.ok
        assert health.backend == "process"
        assert health.level == "process"
        probe.run(probe.items(_arrays(2)))
        health = probe.health()
        assert health.last_unit_latency_s >= 0.0
        assert health.ring_leased == 0
        assert health.faults.total == 0

    def test_health_counts_faults_across_streams(self):
        probe = HandoffProbeService(_config("inline", max_retries=1))
        arrays = _arrays()
        probe.run(probe.items(arrays, faults={1: "poison"}, fail_attempts=1))
        probe.run(probe.items(arrays, faults={2: "poison"}, fail_attempts=1))
        totals = probe.health().faults
        assert totals.retries == 2

    def test_health_server_serves_json_and_503_on_drain(self):
        probe = HandoffProbeService(_config("inline"))
        server = start_health_server(probe)
        port = server.server_address[1]
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=5
            ) as response:
                assert response.status == 200
                body = json.loads(response.read())
            assert body["state"] == "healthy"
            assert body["faults"]["crashes"] == 0
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=5
                )
            assert err.value.code == 404
            probe.drain()
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/health", timeout=5
                )
            assert err.value.code == 503
            assert json.loads(err.value.read())["state"] == "drained"
        finally:
            server.shutdown()


class TestSlabRingAccessors:
    def test_stats_and_leak_assertion(self):
        from repro.serve import SlabRing

        ring = SlabRing.create(n_slabs=3, slab_nbytes=64)
        try:
            assert ring.stats() == {
                "n_slabs": 3, "slab_nbytes": 64, "leased": 0, "free": 3,
            }
            ring.assert_no_leaks()
            slab = ring.try_lease()
            assert ring.leased_count() == 1
            assert ring.stats()["free"] == 2
            with pytest.raises(AssertionError, match="leaked 1 lease"):
                ring.assert_no_leaks("test stream")
            ring.release(slab)
            ring.assert_no_leaks()
        finally:
            ring.destroy()

    def test_release_after_crash_recovery_balances(self):
        # The regression the ring_rebuild guard exists for: a crash with
        # leases outstanding must not leak them into the replacement ring.
        probe = HandoffProbeService(
            _config("process-shm", max_retries=2, inflight=3)
        )
        arrays = _arrays(8)
        items = probe.items(arrays, faults={3: "kill"}, fail_attempts=1)
        results, _ = probe.run(items, keep_results=True)
        assert results == _checksums(arrays)
        assert probe.last_shm["leased_at_close"] == 0
        assert probe.last_shm["ring_rebuilds"] >= 1


class TestConfigValidation:
    @pytest.mark.parametrize("kw", [
        {"unit_timeout_s": 0.0},
        {"unit_timeout_s": -1.0},
        {"max_retries": -1},
        {"backoff_base_s": -0.1},
        {"degrade_after": 0},
    ])
    def test_supervision_fields_validate(self, kw):
        with pytest.raises(ValueError):
            ServiceConfig(**kw)

    def test_bad_fault_kind_rejected(self):
        probe = HandoffProbeService(_config("inline"))
        items = probe.items(_arrays(2))
        items[0].fault = "segfault"
        with pytest.raises(ValueError, match="fault must be one of"):
            probe.run(items)
