"""The async ingestion gateway: wall-clock budgets, ordering, clean close.

The batcher promises are about the **monotonic wall clock** (a stalled DAQ
link must not stall the wedges already waiting), so these tests measure
real elapsed time.  Tolerances are deliberately loose — CI boxes stall —
but the *semantics* asserted are exact: a batch never waits meaningfully
past its deadline, ``budget=0`` never waits at all, results keep stream
order, and early close leaves nothing in flight.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.serve import (
    AsyncMicroBatcher,
    AsyncQueueSource,
    AsyncSocketSource,
    DecompressionService,
    ServiceConfig,
    StreamingCompressionService,
    aiter_wedges,
    async_replay_stream,
    read_wedge_frame,
    write_wedge_frame,
)

# Generous upper tolerance for "flushed at the deadline" on busy CI boxes;
# the lower bound only needs to show the batcher actually waited.
BUDGET = 0.25
TOL = 1.0


@pytest.fixture(scope="module")
def model():
    return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)


@pytest.fixture(scope="module")
def wedges():
    rng = np.random.default_rng(5)
    w = rng.integers(0, 1024, size=(13, 16, 24, 30)).astype(np.uint16)
    w[w < 500] = 0
    return w


@pytest.fixture(scope="module")
def serial_payloads(model, wedges):
    compressor = BCAECompressor(model)
    return [compressor.compress(w).payload for w in wedges]


def _wedge(i):
    return np.full((2, 3, 4), i, dtype=np.uint16)


async def _collect(aiterator):
    return [item async for item in aiterator]


class TestWallClockBudget:
    def test_stalled_stream_flushes_at_deadline(self):
        """A batch must flush ~budget after its first wedge, with no more
        arrivals needed — the property replayed stream time cannot give."""

        async def run():
            source = AsyncQueueSource()
            batcher = AsyncMicroBatcher(max_batch=16, max_delay_s=BUDGET)
            gen = batcher.batches(source.__aiter__())
            for i in range(3):
                source.put_nowait(_wedge(i))
            t0 = time.monotonic()
            batch = await asyncio.wait_for(gen.__anext__(), timeout=10.0)
            elapsed = time.monotonic() - t0
            source.close()
            with pytest.raises(StopAsyncIteration):
                await asyncio.wait_for(gen.__anext__(), timeout=10.0)
            return batch, elapsed

        batch, elapsed = asyncio.run(run())
        assert batch.n_wedges == 3
        assert batch.closed_by == "budget"
        # It waited (the stream never ended), but not meaningfully past the
        # deadline — and the batch's own wall-clock accounting agrees.
        assert elapsed >= BUDGET * 0.5
        assert elapsed <= BUDGET + TOL
        assert BUDGET * 0.5 <= batch.wait_s <= BUDGET + TOL

    def test_zero_budget_never_waits(self):
        """budget=0: a batch closes the moment the source would block."""

        async def run():
            source = AsyncQueueSource()
            batcher = AsyncMicroBatcher(max_batch=16, max_delay_s=0.0)
            batches = []

            async def consume():
                async for b in batcher.batches(source.__aiter__()):
                    batches.append((b, time.monotonic()))

            task = asyncio.ensure_future(consume())
            puts = []
            for i in range(4):
                source.put_nowait(_wedge(i))
                puts.append(time.monotonic())
                await asyncio.sleep(0.05)
            source.close()
            await asyncio.wait_for(task, timeout=10.0)
            return batches, puts

        batches, puts = asyncio.run(run())
        assert sum(b.n_wedges for b, _t in batches) == 4
        for b, emitted in batches:
            assert b.closed_by in ("budget", "eof")
            # Never held: emitted well before the 50 ms inter-arrival gap
            # would have been needed to grow the batch.
            assert b.wait_s <= TOL / 2

    def test_full_batch_closes_without_waiting(self, wedges):
        """An abundant source fills batches; the (huge) budget never fires."""

        async def run():
            batcher = AsyncMicroBatcher(max_batch=4, max_delay_s=60.0)
            t0 = time.monotonic()
            batches = await _collect(batcher.batches(aiter_wedges(wedges[:8])))
            return batches, time.monotonic() - t0

        batches, elapsed = asyncio.run(run())
        assert [b.n_wedges for b in batches] == [4, 4]
        assert all(b.closed_by == "full" for b in batches)
        assert elapsed < 5.0  # nowhere near the 60 s budget

    def test_no_batch_waits_past_deadline_randomized(self):
        """Property over random arrival processes: every budget-closed batch
        respects the deadline ± tolerance; nothing is dropped/reordered."""

        rng = np.random.default_rng(42)
        gaps = rng.choice([0.0, 0.005, 0.03, 0.12], size=12)

        async def run():
            source = AsyncQueueSource()

            async def produce():
                for i, gap in enumerate(gaps):
                    if gap:
                        await asyncio.sleep(gap)
                    await source.put(_wedge(i))
                source.close()

            producer = asyncio.ensure_future(produce())
            batcher = AsyncMicroBatcher(max_batch=3, max_delay_s=0.1)
            batches = await _collect(batcher.batches(source.__aiter__()))
            await producer
            return batches

        batches = asyncio.run(run())
        flat = [int(w[0, 0, 0]) for b in batches for w in b.wedges]
        assert flat == list(range(12))  # exactly once, in order
        for b in batches:
            if b.closed_by == "full":
                assert b.n_wedges == 3
            else:
                assert b.n_wedges <= 3
            assert b.wait_s <= 0.1 + TOL


class TestQueueSourceClose:
    def test_close_on_full_bounded_queue_still_ends_stream(self):
        """close() on a full bounded queue (no room for the sentinel) must
        still terminate the stream once the backlog drains."""

        async def run():
            source = AsyncQueueSource(maxsize=2)
            source.put_nowait(_wedge(0))
            source.put_nowait(_wedge(1))
            source.close()  # queue full: the sentinel cannot be enqueued
            items = await asyncio.wait_for(_collect(aiter_wedges(source)), timeout=10.0)
            return items

        items = asyncio.run(run())
        assert [int(i.wedge[0, 0, 0]) for i in items] == [0, 1]

    def test_close_racing_blocked_put_loses_nothing(self):
        """A put() blocked on a full queue when close() lands must still be
        delivered, even if the DONE sentinel slips in ahead of it."""

        async def run():
            source = AsyncQueueSource(maxsize=1)
            source.put_nowait(_wedge(1))

            async def producer():
                await source.put(_wedge(2))  # blocks: queue is full

            prod = asyncio.ensure_future(producer())
            await asyncio.sleep(0)  # let the put block

            items = []

            async def consume():
                async for item in aiter_wedges(source):
                    items.append(int(item.wedge[0, 0, 0]))
                    # Close in the window where the queue is momentarily
                    # empty but the blocked put hasn't resumed yet.
                    if not source._closed:
                        source.close()

            await asyncio.wait_for(consume(), timeout=10.0)
            await prod
            return items

        assert asyncio.run(run()) == [1, 2]

    def test_put_after_close_rejected(self):
        async def run():
            source = AsyncQueueSource()
            source.close()
            with pytest.raises(RuntimeError, match="closed"):
                await source.put(_wedge(0))
            with pytest.raises(RuntimeError, match="closed"):
                source.put_nowait(_wedge(0))

        asyncio.run(run())


class TestAsyncSyncEquivalence:
    @pytest.mark.parametrize("config", [
        ServiceConfig(max_batch=4, workers=0),
        ServiceConfig(max_batch=4, workers=2, inflight=3),
        ServiceConfig(max_batch=8, workers=1, backend="process", shm_slab_mb=4.0),
    ], ids=["inline", "thread2", "process-shm"])
    def test_same_bytes_same_order(self, model, wedges, serial_payloads, config):
        service = StreamingCompressionService(model, config)
        payloads, stats = asyncio.run(service.run_async(wedges))
        assert stats.n_wedges == len(wedges)
        assert [r.seq for r in stats.records] == sorted(r.seq for r in stats.records)
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)

    def test_queue_fed_gateway_matches_serial(self, model, wedges, serial_payloads):
        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, max_delay_s=0.05, workers=0)
        )

        async def run():
            source = AsyncQueueSource()

            async def produce():
                for w in wedges:
                    await source.put(w)
                    await asyncio.sleep(0.002)
                source.close()

            producer = asyncio.ensure_future(produce())
            payloads, stats = await service.run_async(source)
            await producer
            return payloads, stats

        payloads, stats = asyncio.run(run())
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)

    def test_decompression_async_matches_sync(self, model, wedges):
        compressor = BCAECompressor(model)
        batch = compressor.compress(wedges)
        reference = compressor.decompress(batch)
        service = DecompressionService(model, ServiceConfig(max_batch=4, workers=2))
        recons, stats = asyncio.run(service.run_async(batch))
        np.testing.assert_array_equal(np.concatenate(recons), reference)
        assert stats.n_wedges == len(wedges)

    def test_wall_clock_replay_matches_serial(self, model, wedges, serial_payloads):
        """async_replay_stream paces arrivals for real; bytes unchanged."""

        from repro.daq import DAQConfig, StreamingCompressionSim

        sim = StreamingCompressionSim(
            DAQConfig(frame_rate_hz=2000.0, wedges_per_frame=4), seed=3
        )
        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=8, max_delay_s=0.02)
        )
        payloads, stats = asyncio.run(
            service.run_async(async_replay_stream(sim.wedge_stream(wedges), speed=4.0))
        )
        assert stats.n_wedges == len(wedges)
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)


class TestCancellationAndClose:
    def test_early_close_drains_cleanly(self, model, wedges, serial_payloads):
        """Breaking out of the async stream strands no in-flight units."""

        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=2, workers=2, inflight=2)
        )

        async def run():
            gen = service.compress_stream_async(wedges)
            record, payload = await gen.__anext__()
            await gen.aclose()
            return record

        record = asyncio.run(run())
        assert record.seq == 0
        # The service survives an abandoned stream: full parity afterwards.
        payloads, _ = service.run(wedges)
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)

    def test_early_close_releases_all_slabs(self, model, wedges):
        from multiprocessing import shared_memory

        service = StreamingCompressionService(
            model,
            ServiceConfig(max_batch=2, workers=1, backend="process", shm_slab_mb=4.0),
        )

        async def run():
            gen = service.compress_stream_async(wedges)
            await gen.__anext__()
            await gen.aclose()

        asyncio.run(run())
        assert service.last_shm["transport"] == "shm"
        assert service.last_shm["leased_at_close"] == 0
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=service.last_shm["name"])

    def test_session_submit_and_ordered_results(self, model, wedges):
        from repro.serve import MicroBatcher, iter_wedges

        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, workers=2, inflight=8)
        )
        batches = list(MicroBatcher(max_batch=4).batches(iter_wedges(wedges)))

        async def run():
            async with service.session() as session:
                futures = [await session.submit(b) for b in batches]
                emitted = [(r, p) async for r, p in session.results()]
                assert session.pending == 0
                for fut in futures:  # each unit's own future resolved too
                    assert fut.done()
                return emitted

        emitted = asyncio.run(run())
        assert [r.seq for r, _p in emitted] == list(range(len(batches)))

    def test_submit_after_close_rejected(self, model):
        service = StreamingCompressionService(model, ServiceConfig(workers=0))

        async def run():
            session = service.session()
            await session.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await session.submit(None)
            assert session.closed

        asyncio.run(run())

    def test_consumer_task_cancellation_cleans_up(self, model, wedges):
        """Cancelling the consuming task still shuts the backend down."""

        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=2, max_delay_s=5.0, workers=0)
        )

        async def run():
            source = AsyncQueueSource()
            source.put_nowait(wedges[0])  # one wedge, then silence
            task = asyncio.ensure_future(service.run_async(source))
            await asyncio.sleep(0.1)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(run())
        # Serviceable afterwards.
        payloads, stats = service.run(wedges)
        assert stats.n_wedges == len(wedges)


class TestSocketSource:
    def test_frames_round_trip_over_tcp(self, wedges):
        async def run():
            served = list(wedges[:5])

            async def handler(reader, writer):
                for w in served:
                    write_wedge_frame(writer, w)
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = await AsyncSocketSource.connect("127.0.0.1", port)
            items = await _collect(aiter_wedges(source))
            server.close()
            await server.wait_closed()
            return items

        items = asyncio.run(run())
        assert [item.seq for item in items] == list(range(5))
        for item, w in zip(items, wedges[:5]):
            np.testing.assert_array_equal(item.wedge, w)

    def test_bad_magic_rejected(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"NOPE" + b"\x00" * 16)
            reader.feed_eof()
            with pytest.raises(ValueError, match="magic"):
                await read_wedge_frame(reader)

        asyncio.run(run())

    def test_truncation_anywhere_in_frame_is_valueerror(self, wedges):
        """A link dying mid-header or mid-payload is one error condition."""

        import io

        buffer = io.BytesIO()

        class _Writer:
            def write(self, data):
                buffer.write(data)

        write_wedge_frame(_Writer(), wedges[0])
        frame = buffer.getvalue()

        async def run(cut):
            reader = asyncio.StreamReader()
            reader.feed_data(frame[:cut])
            reader.feed_eof()
            with pytest.raises(ValueError, match="truncated"):
                await read_wedge_frame(reader)

        for cut in (2, 5, 8, len(frame) - 1):  # magic, dtype, shape, payload
            asyncio.run(run(cut))

    def test_clean_eof_ends_stream(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_wedge_frame(reader)

        assert asyncio.run(run()) is None

    def test_malformed_frames_raise_frame_protocol_error(self, wedges):
        """Every malformed condition is the single documented exception
        (a ValueError subclass, so older catch sites keep working), with
        the raw cause chained."""

        from repro.serve import FrameProtocolError

        import io

        buffer = io.BytesIO()

        class _Writer:
            def write(self, data):
                buffer.write(data)

        write_wedge_frame(_Writer(), wedges[0])
        frame = buffer.getvalue()

        async def run(data):
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            with pytest.raises(FrameProtocolError):
                await read_wedge_frame(reader)

        asyncio.run(run(frame[: len(frame) - 1]))      # truncated payload
        asyncio.run(run(b"NOPE" + frame[4:]))          # bad magic
        # Garbage dtype string: header decodes but numpy rejects it.
        bad = frame[:4] + b"\x03zzz" + frame[8:]
        asyncio.run(run(bad))

    def test_mid_frame_socket_close_is_frame_protocol_error(self, wedges):
        """A peer that dies mid-frame surfaces as FrameProtocolError and
        the source's transport is closed, not leaked."""

        from repro.serve import FrameProtocolError

        async def run():
            async def handler(reader, writer):
                write_wedge_frame(writer, wedges[0])
                # Second frame: cut the connection after the header.
                writer.write(b"WDG1\x03")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = await AsyncSocketSource.connect("127.0.0.1", port)
            got = []
            with pytest.raises(FrameProtocolError):
                async for item in source:
                    got.append(item)
            assert source._writer is None  # transport closed by frames()
            server.close()
            await server.wait_closed()
            return got

        got = asyncio.run(run())
        assert len(got) == 1  # the complete first frame was delivered
        np.testing.assert_array_equal(got[0].wedge, wedges[0])

    def test_socket_gateway_to_payloads(self, model, wedges, serial_payloads):
        """Socket frames all the way through the compression gateway."""

        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=4, max_delay_s=0.05, workers=0)
        )

        async def run():
            async def handler(reader, writer):
                for w in wedges:
                    write_wedge_frame(writer, w)
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = await AsyncSocketSource.connect("127.0.0.1", port)
            payloads, stats = await service.run_async(source)
            server.close()
            await server.wait_closed()
            return payloads, stats

        payloads, stats = asyncio.run(run())
        assert stats.n_wedges == len(wedges)
        assert b"".join(bytes(p.payload) for p in payloads) == b"".join(serial_payloads)
