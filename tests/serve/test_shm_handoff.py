"""The shared-memory slab transport: bit-identity, fallback, leak checks.

The shm ring is a pure transport — its contract is that every byte that
comes out is the byte the pickle transport (and the serial path) would
have produced, across every model family and both precision modes, while
slabs are leased and released so tightly that nothing survives a stream:
not on success, not on per-unit fallback, not on a worker exception.
"""

import asyncio
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.serve import (
    DecompressionService,
    HandoffProbeService,
    ServiceConfig,
    SlabRing,
    StreamingCompressionService,
)

WEDGE_SPATIAL = (16, 24, 32)
ALL_MODELS = ("bcae_2d", "bcae_pp", "bcae_ht", "bcae")


@pytest.fixture(scope="module")
def wedges():
    rng = np.random.default_rng(11)
    w = rng.integers(0, 1024, size=(5,) + WEDGE_SPATIAL).astype(np.uint16)
    w[w < 600] = 0
    return w


def _model(name, half=True):
    kwargs = dict(m=2, n=2, d=2) if name == "bcae_2d" else {}
    model = build_model(name, wedge_spatial=WEDGE_SPATIAL, seed=0, **kwargs)
    # BatchNorm models (the original BCAE) must serve from running
    # statistics or payloads would depend on batch composition.
    model.eval()
    return model


def _service_bytes(service, wedges):
    payloads, stats = service.run(wedges)
    return b"".join(bytes(p.payload) for p in payloads), stats


class TestBitIdentity:
    """shm vs pickle vs serial — all four models, both precision modes."""

    @pytest.mark.parametrize("name", ALL_MODELS)
    @pytest.mark.parametrize("half", [True, False], ids=["half", "full"])
    def test_compress_payloads_identical(self, name, half, wedges):
        model = _model(name)
        serial = BCAECompressor(model, half=half)
        reference = b"".join(serial.compress(w).payload for w in wedges)

        configs = {
            "shm": ServiceConfig(max_batch=2, workers=1, backend="process",
                                 half=half, shm_slab_mb=4.0),
            "pickle": ServiceConfig(max_batch=2, workers=1, backend="process",
                                    half=half, transport="pickle"),
        }
        for label, config in configs.items():
            service = StreamingCompressionService(model, config)
            got, stats = _service_bytes(service, wedges)
            assert got == reference, f"{name}/{label} payload mismatch"
            assert {r.transport for r in stats.records} == {label}

    @pytest.mark.parametrize("half", [True, False], ids=["half", "full"])
    def test_decompress_recons_identical(self, half, wedges):
        model = _model("bcae_2d")
        serial = BCAECompressor(model, half=half)
        batch = serial.compress(wedges)
        reference = serial.decompress(batch)
        for transport in ("shm", "pickle"):
            service = DecompressionService(
                model,
                ServiceConfig(max_batch=2, workers=1, backend="process",
                              half=half, transport=transport, shm_slab_mb=4.0),
            )
            recons, stats = service.run(batch)
            np.testing.assert_array_equal(np.concatenate(recons), reference)
            assert {r.transport for r in stats.records} == {transport}


class TestSlabFallback:
    def test_input_exhaustion_falls_back_to_pickle(self, wedges):
        """Units larger than a slab cross by pickle — same bytes."""

        model = _model("bcae_2d")
        reference = b"".join(
            BCAECompressor(model).compress(w).payload for w in wedges
        )
        # 1 KiB slabs: no wedge batch fits, every unit must fall back.
        service = StreamingCompressionService(
            model,
            ServiceConfig(max_batch=2, workers=1, backend="process",
                          shm_slab_mb=1 / 1024),
        )
        got, stats = _service_bytes(service, wedges)
        assert got == reference
        assert all(r.transport == "pickle" for r in stats.records)
        assert service.last_shm["input_fallbacks"] == stats.n_batches
        assert service.last_shm["leased_at_close"] == 0

    def test_result_too_large_falls_back_by_value(self, wedges):
        """Input fits the slab but the reconstruction does not: the input
        still rides shm, the result crosses by value — bit-identical."""

        model = _model("bcae_2d")
        serial = BCAECompressor(model)
        batch = serial.compress(wedges)
        reference = serial.decompress(batch)
        # Per 2-wedge chunk: fp16 codes ~6 KiB (fits), float32 recon
        # ~90 KiB (does not) with 16 KiB slabs.
        service = DecompressionService(
            model,
            ServiceConfig(max_batch=2, workers=1, backend="process",
                          shm_slab_mb=16 / 1024),
        )
        recons, stats = service.run(batch)
        np.testing.assert_array_equal(np.concatenate(recons), reference)
        assert all(r.transport == "shm" for r in stats.records)
        assert service.last_shm["result_fallbacks"] == stats.n_batches
        assert service.last_shm["leased_at_close"] == 0

    def test_mixed_unit_sizes(self, wedges):
        """Tail batches smaller than the slab ride shm while oversize
        units fall back, in one stream."""

        model = _model("bcae_2d")
        reference = b"".join(
            BCAECompressor(model).compress(w).payload for w in wedges
        )
        # A wedge is 24 KiB of uint16 input: with 64 KiB slabs the 4-wedge
        # batch (96 KiB) falls back while the 1-wedge tail rides shm.
        service = StreamingCompressionService(
            model,
            ServiceConfig(max_batch=4, workers=1, backend="process",
                          shm_slab_mb=64 / 1024),
        )
        got, stats = _service_bytes(service, wedges)
        assert got == reference
        assert [r.transport for r in stats.records] == ["pickle", "shm"]
        assert service.last_shm["input_fallbacks"] == 1
        assert service.last_shm["leased_at_close"] == 0


class TestLeaks:
    def _assert_ring_gone(self, service):
        assert service.last_shm["leased_at_close"] == 0
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=service.last_shm["name"])

    def test_all_slabs_released_after_close(self, wedges):
        service = StreamingCompressionService(
            _model("bcae_2d"),
            ServiceConfig(max_batch=2, workers=1, backend="process",
                          shm_slab_mb=4.0),
        )
        service.run(wedges)
        self._assert_ring_gone(service)

    def test_ring_destroyed_on_worker_exception(self):
        """A worker fault mid-stream must not leak the segment or slabs."""

        probe = HandoffProbeService(
            ServiceConfig(max_batch=4, workers=1, backend="process",
                          inflight=2, shm_slab_mb=1.0)
        )
        arrays = [np.ones((4, 8), np.uint16) * i for i in range(6)]
        items = probe.items(arrays, poison_seqs=[2])
        with pytest.raises(RuntimeError, match="injected"):
            probe.run(items)
        assert probe.last_shm["transport"] == "shm"
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=probe.last_shm["name"])
        # ... and the service stays serviceable.
        results, stats = probe.run(arrays, keep_results=True)
        assert results == [float(a.sum()) for a in arrays]
        self._assert_ring_gone(probe)

    def test_async_session_releases_ring(self, wedges):
        service = StreamingCompressionService(
            _model("bcae_2d"),
            ServiceConfig(max_batch=2, workers=1, backend="process",
                          shm_slab_mb=4.0),
        )
        asyncio.run(service.run_async(wedges))
        self._assert_ring_gone(service)


class TestSlabRingUnit:
    """The ring primitive itself (no pools involved)."""

    def test_lease_release_cycle(self):
        ring = SlabRing.create(n_slabs=2, slab_nbytes=64)
        try:
            a, b = ring.try_lease(), ring.try_lease()
            assert {a, b} == {0, 1}
            assert ring.try_lease() is None  # exhausted
            ring.release(a)
            assert ring.leased == 1
            assert ring.try_lease() == a
            ring.release(a)
            ring.release(a)  # idempotent
            assert ring.leased == 1
        finally:
            ring.destroy()

    def test_release_never_leased_rejected(self):
        """A never-leased slab must not be silently accepted — that would
        mask double-release bugs (release-after-lease stays idempotent)."""

        ring = SlabRing.create(n_slabs=2, slab_nbytes=64)
        try:
            with pytest.raises(ValueError, match="never leased"):
                ring.release(0)
            with pytest.raises(ValueError, match="never leased"):
                ring.release(99)  # out of range entirely
            slab = ring.try_lease()
            ring.release(slab)
            ring.release(slab)  # idempotent after a real lease
            # Re-leasing arms the slab again: bookkeeping is per lease.
            assert ring.try_lease() == slab
            ring.release(slab)
            assert ring.leased == 0 and ring.try_lease() is not None
        finally:
            ring.destroy()

    def test_array_round_trip(self):
        ring = SlabRing.create(n_slabs=1, slab_nbytes=1024)
        try:
            arr = np.arange(12, dtype=np.int32).reshape(3, 4)
            desc = ring.write_array(0, arr)
            np.testing.assert_array_equal(ring.read_array(desc), arr)
            view = ring.read_array(desc, copy=False)
            assert not view.flags.writeable
            del view  # a live view would block closing the segment
        finally:
            ring.destroy()

    def test_oversize_write_rejected(self):
        ring = SlabRing.create(n_slabs=1, slab_nbytes=16)
        try:
            with pytest.raises(ValueError, match="exceeds"):
                ring.write_array(0, np.zeros(64, np.float64))
        finally:
            ring.destroy()

    def test_attach_sees_creator_bytes(self):
        ring = SlabRing.create(n_slabs=1, slab_nbytes=64)
        try:
            desc = ring.write_array(0, np.arange(8, dtype=np.uint8))
            other = SlabRing.attach(ring.spec())
            np.testing.assert_array_equal(
                other.read_array(desc), np.arange(8, dtype=np.uint8)
            )
            other.close()
        finally:
            ring.destroy()

    def test_destroy_idempotent_and_unlinks(self):
        ring = SlabRing.create(n_slabs=1, slab_nbytes=64)
        name = ring.spec().name
        ring.destroy()
        ring.destroy()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            SlabRing.create(n_slabs=0, slab_nbytes=64)
        with pytest.raises(ValueError):
            SlabRing.create(n_slabs=1, slab_nbytes=0)


class TestConfigValidation:
    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ServiceConfig(transport="carrier-pigeon")

    def test_bad_slab_size_rejected(self):
        with pytest.raises(ValueError, match="shm_slab_mb"):
            ServiceConfig(shm_slab_mb=0)

    def test_slab_nbytes_derived(self):
        assert ServiceConfig(shm_slab_mb=2.0).slab_nbytes == 2 << 20
