"""MicroBatcher: chunking, latency budget, order preservation."""

import numpy as np
import pytest

from repro.serve import MicroBatcher, StreamItem, iter_wedges, replay_stream


def _items(n, arrivals=None):
    wedges = [np.full((2, 3, 4), i, dtype=np.uint16) for i in range(n)]
    if arrivals is None:
        return list(iter_wedges(wedges))
    return [StreamItem(seq=i, arrival_s=t, wedge=w)
            for i, (t, w) in enumerate(zip(arrivals, wedges))]


class TestChunking:
    def test_exact_chunks(self):
        batches = list(MicroBatcher(max_batch=4).batches(_items(8)))
        assert [b.n_wedges for b in batches] == [4, 4]
        assert [b.seq for b in batches] == [0, 1]
        assert [b.first_seq for b in batches] == [0, 4]

    def test_tail_batch(self):
        batches = list(MicroBatcher(max_batch=4).batches(_items(6)))
        assert [b.n_wedges for b in batches] == [4, 2]

    def test_order_and_content(self):
        batches = list(MicroBatcher(max_batch=3).batches(_items(7)))
        flat = np.concatenate([b.wedges for b in batches])
        assert [int(w[0, 0, 0]) for w in flat] == list(range(7))

    def test_empty_stream(self):
        assert list(MicroBatcher(max_batch=4).batches(iter(()))) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_delay_s=-1.0)


class TestLatencyBudget:
    def test_budget_closes_batches(self):
        # Arrivals at 0,1,2,10,11,20 ms with a 3 ms budget.
        arrivals = [0.0, 0.001, 0.002, 0.010, 0.011, 0.020]
        batches = list(
            MicroBatcher(max_batch=16, max_delay_s=0.003).batches(_items(6, arrivals))
        )
        assert [b.n_wedges for b in batches] == [3, 2, 1]
        assert batches[0].accumulation_s == pytest.approx(0.002)

    def test_zero_budget_never_waits_on_time(self):
        arrivals = [0.0, 5.0, 10.0]
        batches = list(MicroBatcher(max_batch=2, max_delay_s=0.0).batches(_items(3, arrivals)))
        assert [b.n_wedges for b in batches] == [2, 1]

    def test_untimed_stream_ignores_budget(self):
        batches = list(MicroBatcher(max_batch=4, max_delay_s=1e-9).batches(_items(8)))
        assert [b.n_wedges for b in batches] == [4, 4]


class TestReplayStream:
    def test_wraps_timed_pairs(self):
        pairs = [(0.5, np.zeros((2, 3, 4))), (0.7, np.ones((2, 3, 4)))]
        items = list(replay_stream(pairs))
        assert [i.seq for i in items] == [0, 1]
        assert [i.arrival_s for i in items] == [0.5, 0.7]
