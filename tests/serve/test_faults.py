"""Fault injection for the model-pool engine: containment and recovery.

A worker that raises mid-batch must (1) surface the error on the owning
unit — the future the submitter holds, or the run() call at that unit's
position — (2) release its slab and in-flight slot, and (3) leave the
service fully serviceable for subsequent submissions.  These paths were
previously untested; the :class:`HandoffProbeService` poison hook makes
the fault deterministic on every backend without corrupting model state.
"""

import asyncio
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.serve import (
    DecompressionService,
    HandoffProbeService,
    ServiceConfig,
    StreamingCompressionService,
)


def _arrays(n=6):
    return [np.full((3, 4), i, dtype=np.uint16) for i in range(n)]


def _checksums(arrays):
    return [float(a.sum()) for a in arrays]


BACKENDS = [
    pytest.param(ServiceConfig(max_batch=2, workers=0), id="inline"),
    pytest.param(ServiceConfig(max_batch=2, workers=2, inflight=3), id="thread"),
    pytest.param(
        ServiceConfig(max_batch=2, workers=1, backend="process", inflight=3,
                      shm_slab_mb=1.0),
        id="process-shm",
    ),
    pytest.param(
        ServiceConfig(max_batch=2, workers=1, backend="process", inflight=3,
                      transport="pickle"),
        id="process-pickle",
    ),
]


class TestWorkerFaultSurfaces:
    @pytest.mark.parametrize("config", BACKENDS)
    def test_error_raised_and_service_recovers(self, config):
        probe = HandoffProbeService(config)
        arrays = _arrays()
        with pytest.raises(RuntimeError, match="injected"):
            probe.run(probe.items(arrays, poison_seqs=[3]))
        # The pool engine is not poisoned: the same service serves again,
        # completely — every unit, in order.
        results, stats = probe.run(arrays, keep_results=True)
        assert results == _checksums(arrays)
        assert [r.seq for r in stats.records] == list(range(len(arrays)))

    @pytest.mark.parametrize("config", BACKENDS)
    def test_fault_on_first_and_last_unit(self, config):
        probe = HandoffProbeService(config)
        arrays = _arrays(4)
        for poisoned in (0, len(arrays) - 1):
            with pytest.raises(RuntimeError, match="injected"):
                probe.run(probe.items(arrays, poison_seqs=[poisoned]))
        results, _ = probe.run(arrays, keep_results=True)
        assert results == _checksums(arrays)

    def test_thread_pool_compressors_returned_after_fault(self):
        """The checkout protocol restores compressors even on error."""

        probe = HandoffProbeService(ServiceConfig(max_batch=2, workers=2))
        before = len(probe._idle)
        with pytest.raises(RuntimeError):
            probe.run(probe.items(_arrays(), poison_seqs=[1]))
        assert len(probe._idle) >= before

    def test_shm_slab_released_on_fault(self):
        """The poisoned unit's slab is freed; the ring never leaks."""

        probe = HandoffProbeService(
            ServiceConfig(max_batch=2, workers=1, backend="process",
                          inflight=2, shm_slab_mb=1.0)
        )
        with pytest.raises(RuntimeError, match="injected"):
            probe.run(probe.items(_arrays(), poison_seqs=[1]))
        assert probe.last_shm["transport"] == "shm"
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=probe.last_shm["name"])


class TestAsyncFaultOwnership:
    def test_error_surfaces_on_owning_future_only(self):
        """Per-unit futures: the poisoned unit fails, its neighbours don't."""

        probe = HandoffProbeService(ServiceConfig(workers=2, inflight=8))
        arrays = _arrays(3)
        items = probe.items(arrays, poison_seqs=[1])

        async def run():
            async with probe.session() as session:
                futures = [await session.submit(item) for item in items]
                ok0 = await futures[0]
                with pytest.raises(RuntimeError, match="injected"):
                    await futures[1]
                ok2 = await futures[2]
                return ok0, ok2

        (rec0, res0), (rec2, res2) = asyncio.run(run())
        assert (res0, res2) == (_checksums(arrays)[0], _checksums(arrays)[2])
        assert (rec0.seq, rec2.seq) == (0, 2)

    @pytest.mark.parametrize("config", BACKENDS)
    def test_error_surfaces_at_unit_position_in_ordered_iteration(self, config):
        probe = HandoffProbeService(config)
        arrays = _arrays(4)
        items = probe.items(arrays, poison_seqs=[2])

        async def run():
            emitted = []
            with pytest.raises(RuntimeError, match="injected"):
                async for record, result in probe.serve_async(items):
                    emitted.append(record.seq)
            return emitted

        emitted = asyncio.run(run())
        assert emitted == [0, 1]  # everything before the faulty unit emitted
        # ... and the service accepts new submissions afterwards.
        results, _ = probe.run(arrays, keep_results=True)
        assert results == _checksums(arrays)

    def test_session_aclose_after_fault_drains(self):
        probe = HandoffProbeService(
            ServiceConfig(workers=1, backend="process", inflight=4,
                          shm_slab_mb=1.0)
        )
        items = probe.items(_arrays(3), poison_seqs=[0, 1, 2])

        async def run():
            session = probe.session()
            for item in items:
                await session.submit(item)
            await session.aclose()  # drains all three failures silently
            assert session.pending == 0

        asyncio.run(run())
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=probe.last_shm["name"])


class TestRealServiceFaults:
    """Faults through the production services (not just the probe)."""

    @pytest.fixture(scope="class")
    def model(self):
        return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2,
                           seed=0)

    @pytest.fixture(scope="class")
    def wedges(self):
        rng = np.random.default_rng(5)
        w = rng.integers(0, 1024, size=(6, 16, 24, 30)).astype(np.uint16)
        w[w < 500] = 0
        return w

    @pytest.mark.parametrize("backend,transport", [
        ("thread", "shm"), ("process", "shm"), ("process", "pickle"),
    ])
    def test_precision_mismatch_fault_then_recovery(self, model, wedges,
                                                    backend, transport):
        """A payload in the wrong precision mode raises in the worker; the
        service then serves a valid stream untouched."""

        import dataclasses

        comp = BCAECompressor(model)
        good = comp.compress(wedges)
        bad = dataclasses.replace(good, half=False)  # worker will reject
        service = DecompressionService(
            model,
            ServiceConfig(max_batch=2, workers=1, backend=backend,
                          transport=transport, shm_slab_mb=1.0),
        )
        with pytest.raises(ValueError, match="precision"):
            service.run(bad)
        recons, stats = service.run(good)
        np.testing.assert_array_equal(
            np.concatenate(recons), comp.decompress(good)
        )
        assert stats.n_wedges == len(wedges)

    def test_compression_service_survives_fault_stream(self, model, wedges):
        """An upstream source raising mid-stream doesn't wedge the pool."""

        service = StreamingCompressionService(
            model, ServiceConfig(max_batch=2, workers=2)
        )

        def broken_source():
            yield wedges[0]
            yield wedges[1]
            raise OSError("DAQ link dropped")

        with pytest.raises(OSError, match="DAQ link"):
            service.run(broken_source())
        payloads, stats = service.run(wedges)
        assert stats.n_wedges == len(wedges)
        reference = b"".join(BCAECompressor(model).compress(w).payload
                             for w in wedges)
        assert b"".join(bytes(p.payload) for p in payloads) == reference
