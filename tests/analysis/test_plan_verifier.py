"""Static plan verifier: green on the zoo, loud on corrupted plans.

The acceptance contract: every Table-1 plan verifies clean with its
clip-elision intervals re-derived, and a deliberately corrupted plan
(mutated stride / dtype / weight values) produces an error diagnostic
*naming the stage*.
"""

import numpy as np
import pytest

from repro.core import MODEL_NAMES, build_model
from repro.core.fast_decode import make_fast_decoder
from repro.core.fast_encode import LOG_INPUT_BOUND, make_fast_encoder
from repro.core.fast_plan import FP16_MAX
from repro.analysis import analyze_model_plans, verify_plan
from repro.analysis.runner import SMOKE_WEDGE

WEDGE = (8, 16, 14)


def _encoder_2d(seed=0):
    model = build_model("bcae_2d", wedge_spatial=WEDGE, seed=seed,
                        m=2, n=2, d=2)
    model.eval()
    return make_fast_encoder(model)


def _verify_2d(enc):
    r, a, h = WEDGE
    grid = 2 ** enc.d
    return verify_plan(enc.plan, r, (a, -(-h // grid) * grid),
                       LOG_INPUT_BOUND, label="t.encoder")


def _errors(record):
    return [d for d in record["diagnostic_objects"] if d.severity == "error"]


class TestCleanPlans:
    def test_all_zoo_plans_verify(self):
        """All four models, encoder + both decoder heads: zero errors,
        intervals re-derived at every quantize site."""

        diags, records = analyze_model_plans(wedge_spatial=SMOKE_WEDGE)
        assert len(records) == 3 * len(MODEL_NAMES)
        assert all(r["ok"] for r in records), [
            r["label"] for r in records if not r["ok"]]
        assert not [d for d in diags if d.severity == "error"]
        for rec in records:
            assert rec["clip_sites"], f"{rec['label']} derived no intervals"
            for site in rec["clip_sites"]:
                # The independent float64 chain must agree with the plan's
                # own fp32 chain away from the saturation boundary.
                if site["bound"] < FP16_MAX and site["bound"] > 0:
                    assert site["bound64"] == pytest.approx(
                        site["bound"], rel=1e-4)
                assert site["clip_elided"] == (site["bound"] < FP16_MAX)

    def test_record_attaches_to_plan(self):
        enc = _encoder_2d()
        assert enc.plan.verification is None
        rec = _verify_2d(enc)
        assert enc.plan.verification is rec
        assert rec["ok"] and rec["label"] == "t.encoder"
        # bn_folds decisions surface as info diagnostics (explainability).
        assert rec["bn_folds"] == enc.bn_folds

    def test_static_shape_chain_matches_runtime(self):
        """The inferred output shape equals what run() actually produces."""

        enc = _encoder_2d()
        rec = _verify_2d(enc)
        r, a, h = WEDGE
        grid = 2 ** enc.d
        x = np.random.default_rng(0).normal(
            size=(2, r, a, h)).astype(np.float32)
        code = enc.encode(x, horizontal_target=-(-h // grid) * grid)
        out = rec["out"]
        assert code.shape == (2, out["channels"]) + tuple(out["spatial"])


class TestCorruptedPlans:
    def test_mutated_stride_flagged_with_stage_name(self):
        enc = _encoder_2d()
        idx = next(i for i, (kind, _op) in enumerate(enc.plan._ops)
                   if kind == "res")
        enc.plan._ops[idx][1][0].stride = (2, 2)  # conv1 of the res block
        rec = _verify_2d(enc)
        assert not rec["ok"]
        errs = _errors(rec)
        assert any(f"stage {idx}:res" in d.scope and d.rule == "PV103"
                   for d in errs)

    def test_mutated_dtype_flagged_with_stage_name(self):
        enc = _encoder_2d()
        idx, spec = next((i, op) for i, (kind, op) in enumerate(enc.plan._ops)
                         if kind == "conv")
        spec.wt = np.asfortranarray(spec.wt, dtype=np.float64)
        rec = _verify_2d(enc)
        errs = _errors(rec)
        assert any(f"stage {idx}:conv" in d.scope and d.rule == "PV001"
                   for d in errs)

    def test_diverged_gemm_orientations_flagged(self):
        enc = _encoder_2d()
        idx, spec = next((i, op) for i, (kind, op) in enumerate(enc.plan._ops)
                         if kind == "conv")
        spec.wtT = np.ascontiguousarray(spec.wtT * np.float32(1.5))
        rec = _verify_2d(enc)
        assert any(d.rule == "PV003" and f"stage {idx}" in d.scope
                   for d in _errors(rec))

    def test_understated_bound_slope_flagged(self):
        """An understated w_l1 could wrongly elide a saturating clip —
        the exact corruption the independent re-derivation exists for."""

        enc = _encoder_2d()
        idx, spec = next((i, op) for i, (kind, op) in enumerate(enc.plan._ops)
                         if kind == "conv")
        spec.w_l1 = spec.w_l1 * 0.5
        rec = _verify_2d(enc)
        assert any(d.rule == "PV005" and f"stage {idx}" in d.scope
                   for d in _errors(rec))

    def test_channel_mismatch_flagged(self):
        enc = _encoder_2d()
        rec = verify_plan(enc.plan, 3, (16, 16), LOG_INPUT_BOUND,
                          label="bad-channels")
        assert any(d.rule == "PV102" for d in _errors(rec))

    def test_pool_divisibility_flagged(self):
        enc = _encoder_2d()
        r, _a, _h = WEDGE
        rec = verify_plan(enc.plan, r, (15, 17), LOG_INPUT_BOUND,
                          label="odd-spatial")
        assert any(d.rule == "PV104" for d in _errors(rec))

    def test_stage_after_head_flagged(self):
        """Epilogue legality: run() applies heads to the result stream, so
        any canvas-consuming op after a head silently drops the head."""

        model = build_model("bcae_2d", wedge_spatial=WEDGE, seed=0,
                            m=2, n=2, d=2)
        model.eval()
        dec = make_fast_decoder(model)
        plan = dec.plans["seg"]
        conv_op = next(op for kind, op in plan._ops if kind == "conv")
        plan._ops.append(("conv", conv_op))
        rec = verify_plan(plan, 2 ** (2 * 2), (4, 4), FP16_MAX,
                          label="t.seg")
        assert any(d.rule == "PV105" for d in _errors(rec))


class TestUlpLedger:
    """PV050–PV052: the relaxed-numerics ledger rules."""

    def test_bit_plan_with_sites_is_error(self):
        """A bit-tier plan carrying ulp sites means a probe-rejected
        formulation ran without the opt-in — hard error."""

        enc = _encoder_2d()
        enc.plan.ulp_sites.append(
            {"site": "blocked-gemm", "key": ("x",), "max_ulp": 1})
        rec = _verify_2d(enc)
        assert not rec["ok"]
        assert any(d.rule == "PV050" for d in _errors(rec))

    def test_over_cap_site_is_error(self):
        """Even on an ulp-tier plan, a recorded bound above the tier cap
        means the compile-time gate is broken."""

        from repro.core.fast_plan import ULP_TIER_MAX_ULP

        model = build_model("bcae_2d", wedge_spatial=WEDGE, seed=0,
                            m=2, n=2, d=2)
        model.eval()
        enc = make_fast_encoder(model, precision="ulp")
        enc.plan.ulp_sites.append(
            {"site": "bn-fold", "stage": 1, "placement": "bnorm->conv",
             "max_ulp": ULP_TIER_MAX_ULP + 1})
        rec = _verify_2d(enc)
        assert not rec["ok"]
        assert any(d.rule == "PV051" for d in _errors(rec))

    def test_bounded_sites_info_and_summary(self):
        """Well-bounded sites on an ulp plan verify clean, surface as
        PV052 info diagnostics, and land in the record's ulp summary."""

        model = build_model("bcae_2d", wedge_spatial=WEDGE, seed=0,
                            m=2, n=2, d=2)
        model.eval()
        enc = make_fast_encoder(model, precision="ulp")
        enc.plan.ulp_sites.append(
            {"site": "blocked-gemm", "key": ("k",), "max_ulp": 1})
        rec = _verify_2d(enc)
        assert rec["ok"]
        infos = [d for d in rec["diagnostic_objects"] if d.rule == "PV052"]
        assert len(infos) == 1
        assert rec["ulp"]["precision"] == "ulp"
        assert rec["ulp"]["max_ulp"] == 1
        assert rec["ulp"]["sites"]

    def test_clean_bit_plan_summary_empty(self):
        rec = _verify_2d(_encoder_2d())
        assert rec["ok"]
        assert rec["ulp"] == {"precision": "bit", "sites": [],
                              "max_ulp": 0,
                              "cap": rec["ulp"]["cap"]}
