"""End-to-end analysis runs: the repo lints clean against its baseline,
and the ratchet actually bites on a fresh finding."""

import json
from pathlib import Path

import pytest

from repro.analysis import load_baseline, run_analysis

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "tools" / "analysis_baseline.json"
FIXTURE = Path(__file__).parent / "fixtures" / "injected_finding.py"


@pytest.fixture(scope="module")
def full_report():
    report, records = run_analysis()
    return report, records


class TestRepoIsClean:
    def test_zero_unbaselined_findings(self, full_report):
        """The acceptance gate CI runs: all four passes over the repo and
        all twelve Table-1 plans, nothing new against the baseline."""

        report, records = full_report
        baseline = load_baseline(BASELINE)
        assert baseline, "checked-in baseline must not be empty"
        new = report.new_findings(baseline)
        assert new == [], [d.format() for d in new]
        assert all(r["ok"] for r in records)

    def test_no_errors_anywhere(self, full_report):
        report, _ = full_report
        assert report.counts().get("error", 0) == 0

    def test_baseline_file_is_exact(self, full_report):
        """Every baselined fingerprint is still produced: a fixed finding
        must be removed from the baseline (that is the ratchet)."""

        report, _ = full_report
        baseline = load_baseline(BASELINE)
        assert report.fixed_fingerprints(baseline) == []
        assert {d.fingerprint for d in report.gating()} == baseline

    def test_baseline_schema(self):
        data = json.loads(BASELINE.read_text())
        assert data["version"] == 1
        prints = data["fingerprints"]
        assert prints == sorted(prints) and len(set(prints)) == len(prints)


class TestRatchetBites:
    def test_injected_finding_is_new(self):
        report, _ = run_analysis(
            passes=("hotpath",), extra_sources=(FIXTURE,))
        baseline = load_baseline(BASELINE)
        new = report.new_findings(baseline)
        assert len(new) == 1
        diag = new[0]
        assert diag.rule == "HP001" and "injected_finding" in diag.scope
        assert diag.scope.endswith(":hot_loop")

    def test_missing_baseline_means_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()


class TestJsonReport:
    def test_to_json_round_trips(self, full_report):
        report, _ = full_report
        payload = json.loads(report.to_json(load_baseline(BASELINE)))
        assert payload["baseline"]["new"] == []
        assert payload["baseline"]["fixed"] == []
        assert payload["counts"].get("error", 0) == 0
        assert all({"rule", "severity", "location", "message", "fingerprint"}
                   <= set(d) for d in payload["diagnostics"])


class TestPlanStatsRecords:
    def test_records_carry_plan_stats(self, full_report):
        """Every plan record ships its plan_stats() summary — what
        ``analyze --stats`` prints."""

        _report, records = full_report
        assert records
        for rec in records:
            stats = rec["stats"]
            assert stats["precision"] == "bit"
            assert stats["panel_threads"] >= 1
            assert stats["stage_kinds"]
            # Static verification never executes the plan.
            assert stats["gemms"] == {}

    def test_ulp_precision_threads_through(self):
        """The ulp tier compiles and verifies clean through the runner
        (seed-0 folds engage with recorded 1-step bounds)."""

        from repro.analysis import analyze_model_plans

        diags, records = analyze_model_plans(names=["bcae"],
                                             precision="ulp")
        assert not [d for d in diags if d.severity == "error"]
        stats = {rec["label"]: rec["stats"] for rec in records}
        assert all(s["precision"] == "ulp" for s in stats.values())
        sites = [s for st in stats.values() for s in st["ulp_sites"]]
        assert sites and all(s["max_ulp"] <= rec["ulp"]["cap"]
                             for s in sites for rec in records)
