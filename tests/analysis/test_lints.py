"""Unit tests for the AST lint passes (inline sources, no repo I/O).

Each lint is exercised on small handwritten modules: one that violates
the rule, one that follows the blessed idiom, plus the suppression and
fingerprint-stability contracts the baseline ratchet depends on.
"""

import textwrap

from repro.analysis.diagnostics import (
    GATING_SEVERITIES,
    AnalysisReport,
    Diagnostic,
    assign_occurrences,
)
from repro.analysis.hotpath_lint import lint_source as lint_hotpath
from repro.analysis.concurrency_lint import (
    lint_async_source,
    lint_lease_source,
    lint_result_timeout_source,
)
from repro.analysis.api_lint import audit_source


def _src(text):
    return textwrap.dedent(text).lstrip("\n")


def _rules(diags):
    return sorted(d.rule for d in diags)


class TestHotPathLint:
    def test_allocation_in_loop_flagged(self):
        diags = lint_hotpath(_src("""
            import numpy as np

            def f(items):
                for x in items:
                    buf = np.zeros(4, dtype=np.float32)
        """), "m.py")
        assert _rules(diags) == ["HP001"]
        assert diags[0].scope == "m.py:f"
        assert "np.zeros" in diags[0].message

    def test_allocation_outside_loop_clean(self):
        diags = lint_hotpath(_src("""
            import numpy as np

            def f(items):
                buf = np.zeros(4, dtype=np.float32)
                for x in items:
                    np.add(x, 1.0, out=buf)
                return buf
        """), "m.py")
        assert diags == []

    def test_out_capable_ufunc_without_out_flagged(self):
        src = _src("""
            import numpy as np

            def f(items, buf):
                for x in items:
                    y = np.add(x, 1.0)
                    np.multiply(x, 2.0, out=buf)
        """)
        diags = lint_hotpath(src, "m.py")
        assert _rules(diags) == ["HP002"]
        assert "out=" in diags[0].message

    def test_method_allocators_and_append_flagged(self):
        diags = lint_hotpath(_src("""
            def f(items):
                acc = []
                for x in items:
                    y = x.astype("float32")
                    acc.append(y.copy())
                return acc
        """), "m.py")
        assert _rules(diags) == ["HP003", "HP003", "HP004"]

    def test_comprehension_counts_as_loop(self):
        diags = lint_hotpath(_src("""
            import numpy as np

            def f(items):
                return [np.asarray(x) for x in items]
        """), "m.py")
        assert _rules(diags) == ["HP001"]

    def test_suppression_comment_honored(self):
        diags = lint_hotpath(_src("""
            import numpy as np

            def f(items):
                for x in items:
                    buf = np.zeros(4)  # lint: allow-alloc (cold error path)
        """), "m.py")
        assert diags == []

    def test_nested_def_resets_loop_context(self):
        """A function *defined* in a loop body runs outside the loop."""

        diags = lint_hotpath(_src("""
            import numpy as np

            def f(items):
                for x in items:
                    def cold():
                        return np.zeros(4)
        """), "m.py")
        assert diags == []

    def test_workspace_get_in_closure_flagged(self):
        """HP005: slab acquisition inside a panel-worker closure races the
        other slots — must happen on the caller thread."""

        diags = lint_hotpath(_src("""
            class Plan:
                def _blocked_gemm(self, key):
                    def run_slot(slot):
                        panel = self._ws.get((key, slot), (4,))
                        return panel
                    return run_slot
        """), "m.py")
        assert _rules(diags) == ["HP005"]
        assert "_ws.get" in diags[0].message

    def test_workspace_get_on_caller_thread_clean(self):
        """The blessed shape: slabs acquired in the method body (caller
        thread), the closure only indexes the pre-built list."""

        diags = lint_hotpath(_src("""
            class Plan:
                def _blocked_gemm(self, key, T):
                    slots = []
                    for slot in range(T):
                        slots.append(self._ws.get((key, slot), (4,)))  # lint: allow-alloc

                    def run_slot(slot):
                        return slots[slot]
                    return run_slot
        """), "m.py")
        assert diags == []


class TestLeaseLint:
    def test_leaked_lease_flagged(self):
        diags = lint_lease_source(_src("""
            def f(ring, data):
                slab = ring.try_lease()
                if slab is None:
                    return None
                return len(data)
        """), "m.py")
        assert "CL001" in _rules(diags)

    def test_release_not_in_finally_warned(self):
        diags = lint_lease_source(_src("""
            def f(ring, data):
                slab = ring.try_lease()
                if slab is None:
                    return None
                value = data[slab]
                ring.release(slab)
                return value
        """), "m.py")
        assert _rules(diags) == ["CL002"]

    def test_finally_protected_release_clean(self):
        diags = lint_lease_source(_src("""
            def f(ring, data):
                slab = ring.try_lease()
                if slab is None:
                    return None
                try:
                    value = data[slab]
                finally:
                    ring.release(slab)
                return value
        """), "m.py")
        assert diags == []

    def test_escaped_lease_needs_finally_release_somewhere(self):
        src_leaky = _src("""
            class S:
                def submit(self, ring, data):
                    slab = ring.try_lease()
                    fut = pool.submit(work, slab, data)
                    fut._slab = slab
                    return fut
        """)
        diags = lint_lease_source(src_leaky, "m.py")
        assert "CL003" in _rules(diags)

        src_disciplined = src_leaky + _src("""
            class T:
                def finalize(self, ring, fut):
                    try:
                        return fut.result()
                    finally:
                        ring.release(fut._slab)

                def fail(self, ring, fut):
                    ring.release(fut._slab)
        """)
        assert lint_lease_source(src_disciplined, "m.py") == []

    def test_conditional_lease_expression_tracked(self):
        diags = lint_lease_source(_src("""
            def f(ring, ok):
                slab = ring.try_lease() if ok else None
                return 1
        """), "m.py")
        assert "CL001" in _rules(diags)


class TestAsyncBlockingLint:
    def test_blocking_sleep_in_async_flagged(self):
        diags = lint_async_source(_src("""
            import time

            async def pump(q):
                while True:
                    time.sleep(0.1)
                    await q.put(1)
        """), "m.py")
        assert _rules(diags) == ["CL010"]
        assert "time.sleep" in diags[0].message

    def test_asyncio_sleep_clean(self):
        diags = lint_async_source(_src("""
            import asyncio

            async def pump(q):
                while True:
                    await asyncio.sleep(0.1)
        """), "m.py")
        assert diags == []

    def test_nested_sync_helper_not_flagged(self):
        """Blocking calls inside a *sync* helper defined in an async def
        are the helper's business (it may run in a thread pool)."""

        diags = lint_async_source(_src("""
            async def pump(loop, path):
                def read_blocking():
                    with open(path) as fh:
                        return fh.read()
                return await loop.run_in_executor(None, read_blocking)
        """), "m.py")
        assert diags == []

    def test_bare_open_and_subprocess_flagged(self):
        diags = lint_async_source(_src("""
            import subprocess

            async def f(path):
                data = open(path).read()
                subprocess.run(["ls"])
        """), "m.py")
        assert _rules(diags) == ["CL010", "CL010"]


class TestResultTimeoutLint:
    def test_bare_result_flagged(self):
        diags = lint_result_timeout_source(_src("""
            def wait(future):
                return future.result()
        """), "m.py")
        assert _rules(diags) == ["CL020"]
        assert "timeout" in diags[0].message

    def test_result_with_timeout_clean(self):
        diags = lint_result_timeout_source(_src("""
            def wait(future, deadline):
                return future.result(timeout=deadline)
        """), "m.py")
        assert diags == []

    def test_result_with_positional_timeout_clean(self):
        diags = lint_result_timeout_source(_src("""
            def wait(future):
                return future.result(5.0)
        """), "m.py")
        assert diags == []

    def test_unrelated_result_attribute_not_called_clean(self):
        """Only *calls* named ``result`` gate — attribute reads don't."""

        diags = lint_result_timeout_source(_src("""
            def peek(record):
                return record.result
        """), "m.py")
        assert diags == []


class TestApiLint:
    def test_unbound_all_entry_flagged(self):
        diags = audit_source(_src("""
            __all__ = ["real", "ghost"]

            def real():
                pass
        """), "m.py")
        assert "AP002" in _rules(diags)
        assert any("ghost" in d.message for d in diags)

    def test_private_cross_module_import_flagged(self):
        diags = audit_source(_src("""
            from repro.core.fast_plan import _grid
        """), "m.py")
        assert _rules(diags) == ["AP001"]

    def test_public_def_missing_from_all_is_info_only(self):
        diags = audit_source(_src("""
            __all__ = ["f"]

            def f():
                pass

            def helper():
                pass
        """), "m.py")
        assert _rules(diags) == ["AP003"]
        assert diags[0].severity == "info"

    def test_submodule_reexports_accepted(self):
        diags = audit_source(_src("""
            __all__ = ["core", "serve"]
        """), "pkg/__init__.py", submodules=frozenset({"core", "serve"}))
        assert diags == []


class TestDiagnosticsModel:
    def _diag(self, **kw):
        base = dict(pass_name="hotpath", rule="HP001", severity="warning",
                    location="m.py:3", scope="m.py:f", message="msg",
                    token="np.zeros")
        base.update(kw)
        return Diagnostic(**base)

    def test_fingerprint_ignores_line_numbers(self):
        a = self._diag(location="m.py:3")
        b = self._diag(location="m.py:300")
        assert a.fingerprint == b.fingerprint

    def test_occurrences_disambiguate_duplicates(self):
        diags = [self._diag(), self._diag(), self._diag(token="np.empty")]
        assign_occurrences(diags)
        prints = {d.fingerprint for d in diags}
        assert len(prints) == 3

    def test_info_never_gates(self):
        report = AnalysisReport(diagnostics=[
            self._diag(severity="info"),
            self._diag(severity="warning", token="np.empty"),
        ])
        assert "info" not in GATING_SEVERITIES
        assert [d.severity for d in report.gating()] == ["warning"]
        assert report.new_findings(baseline=set()) == report.gating()

    def test_baseline_suppresses_known_and_reports_fixed(self):
        known = self._diag()
        report = AnalysisReport(diagnostics=[known])
        baseline = {known.fingerprint, "hotpath:HP001:gone.py:g:np.ones#0"}
        assert report.new_findings(baseline) == []
        assert report.fixed_fingerprints(baseline) == [
            "hotpath:HP001:gone.py:g:np.ones#0"]
