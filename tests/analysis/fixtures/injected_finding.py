"""CI fixture: a deliberately un-baselined hot-loop allocation.

Fed to the analyzer via ``--extra-source`` by the CI ``analyze`` job (and
``tests/analysis/test_runner.py``) to prove the baseline gate fails on a
fresh finding.  Never imported.
"""

import numpy as np


def hot_loop(batches):
    total = 0.0
    for batch in batches:
        scratch = np.zeros(batch.shape, dtype=np.float32)  # HP001: injected
        np.add(batch, scratch, out=scratch)
        total += float(scratch.sum())
    return total
