"""io.codes: archive round trips, metadata validation, rechunking."""

import dataclasses

import numpy as np
import pytest

from repro.core import BCAECompressor, build_model
from repro.io import concat_compressed, load_compressed, save_compressed, split_compressed


@pytest.fixture(scope="module")
def small_model():
    return build_model("bcae_2d", wedge_spatial=(16, 24, 30), m=2, n=2, d=2, seed=0)


@pytest.fixture(scope="module")
def raw_wedges():
    rng = np.random.default_rng(3)
    w = rng.integers(0, 1024, size=(5, 16, 24, 30)).astype(np.uint16)
    w[w < 600] = 0
    return w


@pytest.fixture(scope="module")
def compressed(small_model, raw_wedges):
    return BCAECompressor(small_model).compress(raw_wedges)


class TestRoundTrips:
    def test_empty_model_name(self, compressed, tmp_path):
        path = save_compressed(compressed, tmp_path / "c.npz")
        loaded, name = load_compressed(path)
        assert name == ""
        assert loaded.payload == compressed.payload

    def test_single_wedge_batch(self, small_model, raw_wedges, tmp_path):
        comp = BCAECompressor(small_model)
        c = comp.compress(raw_wedges[0])
        loaded, _ = load_compressed(save_compressed(c, tmp_path / "one.npz"))
        assert loaded.n_wedges == 1
        np.testing.assert_array_equal(comp.decompress(loaded), comp.decompress(c))

    def test_oversized_payload(self, small_model, raw_wedges, tmp_path):
        """A ring-buffer payload larger than the codes still archives and
        decodes correctly (codes_view reads exactly n_wedges records)."""

        comp = BCAECompressor(small_model)
        ref = comp.compress(raw_wedges)
        out = bytearray(ref.nbytes + 128)
        c = comp.compress_into(raw_wedges, out=out)
        loaded, _ = load_compressed(save_compressed(c, tmp_path / "ring.npz"))
        np.testing.assert_array_equal(loaded.codes_view(), ref.codes_view())
        np.testing.assert_array_equal(comp.decompress(loaded), comp.decompress(ref))

    def test_precision_mode_round_trips(self, small_model, raw_wedges, tmp_path):
        for half in (True, False):
            comp = BCAECompressor(small_model, half=half)
            c = comp.compress(raw_wedges)
            loaded, _ = load_compressed(save_compressed(c, tmp_path / f"h{half}.npz"))
            assert loaded.half is half
            assert loaded.code_dtype == "<f2"
            np.testing.assert_array_equal(comp.decompress(loaded), comp.decompress(c))


class TestValidation:
    def test_half_mismatch_rejected_at_decode(self, small_model, compressed, tmp_path):
        """The motivating bug: a half payload into a full compressor used to
        decode silently wrong — now it raises."""

        path = save_compressed(compressed, tmp_path / "half.npz")
        loaded, _ = load_compressed(path)
        full = BCAECompressor(small_model, half=False)
        with pytest.raises(ValueError, match="precision"):
            full.decompress(loaded)
        with pytest.raises(ValueError, match="precision"):
            full.decompress_into(loaded)

    def test_legacy_archive_loads_unchecked(self, compressed, small_model, tmp_path):
        """Archives from before the metadata fields keep working."""

        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            payload=np.frombuffer(compressed.payload, dtype=np.uint8),
            code_shape=np.array(compressed.code_shape, dtype=np.int64),
            n_wedges=np.array([compressed.n_wedges], dtype=np.int64),
            original_horizontal=np.array([compressed.original_horizontal], dtype=np.int64),
            model_name=np.frombuffer(b"bcae_2d", dtype=np.uint8),
        )
        loaded, name = load_compressed(path)
        assert name == "bcae_2d"
        assert loaded.half is None  # unknown mode: accepted by either compressor
        for half in (True, False):
            BCAECompressor(small_model, half=half).decompress(loaded)

    def test_truncated_archive_fails_at_load(self, compressed, tmp_path):
        bad = dataclasses.replace(compressed, payload=compressed.payload[:-8])
        path = save_compressed(bad, tmp_path / "trunc.npz")
        with pytest.raises(ValueError, match="truncated"):
            load_compressed(path)

    def test_bad_dtype_rejected_at_decode(self, small_model, compressed):
        bad = dataclasses.replace(compressed, code_dtype="<f4")
        with pytest.raises(ValueError, match="dtype"):
            BCAECompressor(small_model).decompress(bad)


class TestRechunking:
    def test_split_concat_roundtrip(self, compressed):
        chunks = list(split_compressed(compressed, 2))
        assert [c.n_wedges for c in chunks] == [2, 2, 1]
        back = concat_compressed(chunks)
        assert bytes(back.payload) == compressed.payload
        assert back.n_wedges == compressed.n_wedges
        assert back.half == compressed.half

    def test_split_chunks_decode_like_the_whole(self, small_model, compressed):
        comp = BCAECompressor(small_model)
        whole = comp.decompress(compressed)
        parts = np.concatenate(
            [comp.decompress(c) for c in split_compressed(compressed, 3)]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_concat_rejects_mismatched_metadata(self, compressed):
        other = dataclasses.replace(compressed, original_horizontal=7)
        with pytest.raises(ValueError):
            concat_compressed([compressed, other])

    def test_split_validates_batch_size(self, compressed):
        with pytest.raises(ValueError):
            list(split_compressed(compressed, 0))

    def test_concat_rejects_empty(self):
        with pytest.raises(ValueError):
            concat_compressed([])
