#!/usr/bin/env python
"""Documentation checks: intra-repo markdown links, README quickstart.

Two modes, both exercised by CI's docs job (and the link check again by the
tier-1 suite via ``tests/test_docs.py``):

``python tools/check_docs.py``
    Every relative link in the repo's markdown files (README, docs/,
    ROADMAP, CHANGES, …) must resolve to an existing file — docs that point
    nowhere rot silently otherwise.

``python tools/check_docs.py --quickstart``
    Extract the first fenced ``python`` block from README.md and run it.
    The quickstart is the repo's front door; it must actually work.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose links are checked (globs, relative to the root).
DOC_GLOBS = ("*.md", "docs/*.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def iter_markdown_files():
    """All tracked markdown files covered by the link check."""

    for glob in DOC_GLOBS:
        yield from sorted(REPO.glob(glob))


def broken_links() -> list[str]:
    """Relative markdown links that do not resolve to an existing path."""

    problems = []
    for md in iter_markdown_files():
        for target in _LINK.findall(md.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                problems.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    return problems


def readme_quickstart() -> str:
    """Source of the first fenced python block in README.md."""

    readme = (REPO / "README.md").read_text()
    match = _FENCE.search(readme)
    if match is None:
        raise SystemExit("README.md has no ```python quickstart block")
    return match.group(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quickstart", action="store_true",
                        help="run the README quickstart block instead of "
                             "checking links")
    args = parser.parse_args(argv)

    if args.quickstart:
        code = readme_quickstart()
        print("-- running README quickstart --")
        print(code)
        exec(compile(code, "README.md#quickstart", "exec"), {"__name__": "__qs__"})
        print("-- quickstart OK --")
        return 0

    problems = broken_links()
    checked = list(iter_markdown_files())
    if problems:
        print("\n".join(problems))
        return 1
    print(f"checked {len(checked)} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
