#!/usr/bin/env python
"""CI entry for the static analyzer (``repro.analysis``).

Three modes, all exercised by the CI ``analyze`` job:

``python tools/analyze.py --baseline``
    Run every pass and gate against ``tools/analysis_baseline.json``:
    grandfathered findings pass, any *new* warning/error fails (exit 1).
    This is the ratchet — the default CI invocation.

``python tools/analyze.py --write-baseline``
    Regenerate the baseline from the current findings.  Run after fixing
    findings (the file shrinks) — never to paper over new ones in review.

``python tools/analyze.py``
    Report everything with no baseline; exit 1 on any gating finding.
    Useful locally to see the full grandfathered set.

``--extra-source FILE`` feeds additional files to the lint passes; CI uses
it with the injected-finding fixture to prove the gate actually fails.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

BASELINE = REPO / "tools" / "analysis_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", action="store_true",
                        help="gate only findings absent from "
                             "tools/analysis_baseline.json")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline from current findings")
    parser.add_argument("--extra-source", action="append", default=[],
                        help="additional source file for the lint passes")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON report")
    args = parser.parse_args(argv)

    from repro.analysis import load_baseline, run_analysis, write_baseline

    report, records = run_analysis(extra_sources=args.extra_source)
    bad_plans = [r["label"] for r in records if not r["ok"]]

    if args.write_baseline:
        write_baseline(BASELINE, report)
        print(f"baseline -> {BASELINE.relative_to(REPO)} "
              f"({len(report.gating())} findings grandfathered)")
        return 0

    baseline = load_baseline(BASELINE) if args.baseline else None
    if args.json:
        print(report.to_json(baseline))
    else:
        print(report.format_text(baseline))
    if bad_plans:
        print(f"plan verification FAILED: {', '.join(bad_plans)}")
        return 1
    failing = (report.new_findings(baseline) if baseline is not None
               else report.gating())
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
